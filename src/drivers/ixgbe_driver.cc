#include "src/drivers/ixgbe_driver.h"

#include <cstring>

#include "src/obs/copy_probe.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/sampler.h"
#include "src/vstd/check.h"
#include "src/vstd/thread_annotations.h"

namespace atmo {

IxgbeDriver::IxgbeDriver(DmaArena* arena, SimNic* nic, std::uint32_t ring_entries)
    : arena_(arena), nic_(nic), entries_(ring_entries) {
  ATMO_CHECK(ring_entries > 0 && (ring_entries & (ring_entries - 1)) == 0,
             "ring entries must be a power of 2");
}

void IxgbeDriver::Init() {
  rx_ring_ = arena_->Alloc(entries_ * kNicDescBytes);
  tx_ring_ = arena_->Alloc(entries_ * kNicDescBytes);
  rx_buf_base_ = arena_->Alloc(static_cast<std::uint64_t>(entries_) * kIxgbeBufBytes);
  tx_buf_base_ = arena_->Alloc(static_cast<std::uint64_t>(entries_) * kIxgbeBufBytes);

  nic_->ConfigureRxRing(rx_ring_, entries_);
  nic_->ConfigureTxRing(tx_ring_, entries_);

  // Cache borrowed pointers for every descriptor and buffer slot so the
  // polling loops touch DMA memory directly (no per-access translation).
  rx_desc_.resize(entries_);
  tx_desc_.resize(entries_);
  rx_buf_.resize(entries_);
  tx_buf_.resize(entries_);
  for (std::uint32_t i = 0; i < entries_; ++i) {
    rx_desc_[i] = reinterpret_cast<std::uint64_t*>(
        arena_->BorrowWrite(rx_ring_ + i * kNicDescBytes, kNicDescBytes));
    tx_desc_[i] = reinterpret_cast<std::uint64_t*>(
        arena_->BorrowWrite(tx_ring_ + i * kNicDescBytes, kNicDescBytes));
    rx_buf_[i] = arena_->BorrowWrite(rx_buf_base_ + i * kIxgbeBufBytes, kIxgbeBufBytes);
    tx_buf_[i] = arena_->BorrowWrite(tx_buf_base_ + i * kIxgbeBufBytes, kIxgbeBufBytes);
  }

  // Post every RX buffer: descriptor i points at buffer slot i, DD clear.
  for (std::uint32_t i = 0; i < entries_; ++i) {
    rx_desc_[i][0] = rx_buf_base_ + i * kIxgbeBufBytes;
    rx_desc_[i][1] = 0;
  }
  rx_tail_ = entries_ - 1;  // leave one slot: full ring convention
  nic_->SetRxTail(rx_tail_);
}

std::uint32_t IxgbeDriver::RxPeekBurst(RxView* out, std::uint32_t n) const
    ATMO_HOT_PATH(hot-path-alloc) {
  std::uint32_t got = 0;
  while (got < n) {
    std::uint32_t index = (rx_next_ + got) % entries_;
    std::uint64_t meta = rx_desc_[index][1];
    if ((meta & kNicDescDd) == 0) {
      break;
    }
    out[got].data = rx_buf_[index];
    out[got].iova = rx_buf_base_ + index * kIxgbeBufBytes;
    out[got].len = static_cast<std::uint16_t>(meta & kNicDescLenMask);
    // Packet arrival is where a request's causal chain starts: the sampler
    // decides here, once, and every later stage keys off the id in the view.
    out[got].trace_id = obs::NextTraceId();
    if (out[got].trace_id != 0) {
      ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.rx", "trace_id", out[got].trace_id);
    }
    ++got;
  }
  return got;
}

// averif-lint: allow(trace-stage-coverage) — descriptor housekeeping; the
// burst's requests were already stamped "stage.rx" at peek time.
void IxgbeDriver::RxReleaseBurst(std::uint32_t n) ATMO_HOT_PATH(hot-path-alloc) {
  for (std::uint32_t i = 0; i < n; ++i) {
    rx_desc_[rx_next_ % entries_][1] = 0;  // re-arm
    ++rx_next_;
  }
  if (n > 0) {
    rx_tail_ += n;
    nic_->SetRxTail(rx_tail_);
    rx_frames_ += n;
  }
}

// averif-lint: allow(trace-stage-coverage) — slot acquisition only; the
// request is stamped "stage.tx" when the descriptor is committed.
std::uint8_t* IxgbeDriver::TxClaim() ATMO_HOT_PATH(hot-path-alloc) {
  if (tx_next_ - tx_clean_ >= entries_) {
    ReclaimTx();
    if (tx_next_ - tx_clean_ >= entries_) {
      return nullptr;
    }
  }
  return tx_buf_[tx_next_ % entries_];
}

void IxgbeDriver::TxCommitDeferred(std::uint16_t len, std::uint64_t trace_id)
    ATMO_HOT_PATH(hot-path-alloc) {
  ATMO_CHECK(tx_next_ - tx_clean_ < entries_, "TxCommitDeferred without a claimed slot");
  ATMO_CHECK(len <= kIxgbeBufBytes, "frame exceeds TX buffer");
  std::uint32_t index = tx_next_ % entries_;
  tx_desc_[index][0] = tx_buf_base_ + index * kIxgbeBufBytes;
  tx_desc_[index][1] = len & kNicDescLenMask;
  ++tx_next_;
  ++tx_frames_;
  if (trace_id != 0) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.tx", "trace_id", trace_id);
  }
}

std::uint32_t IxgbeDriver::RxBurst(RxFrame* out, std::uint32_t n) {
  std::uint32_t got = RxBurstInPlace(
      [&](VAddr iova, std::uint16_t len) {
        out->len = len;
        obs::CopyPayload(out->data.data(), rx_buf_[(iova - rx_buf_base_) / kIxgbeBufBytes],
                         len);
        ++out;
      },
      n);
  rx_frames_ += got;
  return got;
}

std::uint32_t IxgbeDriver::TxBurst(const TxFrame* frames, std::uint32_t n) {
  std::uint32_t sent = 0;
  while (sent < n) {
    if (tx_next_ - tx_clean_ >= entries_) {
      ReclaimTx();
      if (tx_next_ - tx_clean_ >= entries_) {
        break;  // ring genuinely full
      }
    }
    std::uint32_t index = tx_next_ % entries_;
    std::uint16_t len = frames[sent].len;
    ATMO_CHECK(len <= kIxgbeBufBytes, "frame exceeds TX buffer");
    obs::CopyPayload(tx_buf_[index], frames[sent].data, len);
    tx_desc_[index][0] = tx_buf_base_ + index * kIxgbeBufBytes;
    tx_desc_[index][1] = len & kNicDescLenMask;
    ++tx_next_;
    ++sent;
  }
  if (sent > 0) {
    nic_->SetTxTail(tx_next_);
    tx_frames_ += sent;
  }
  return sent;
}

bool IxgbeDriver::TxInPlaceDeferred(VAddr iova, std::uint16_t len, std::uint64_t trace_id)
    ATMO_HOT_PATH(hot-path-alloc) {
  if (tx_next_ - tx_clean_ >= entries_) {
    ReclaimTx();
    if (tx_next_ - tx_clean_ >= entries_) {
      return false;
    }
  }
  std::uint32_t index = tx_next_ % entries_;
  tx_desc_[index][0] = iova;
  tx_desc_[index][1] = len & kNicDescLenMask;
  ++tx_next_;
  ++tx_frames_;
  if (trace_id != 0) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.tx", "trace_id", trace_id);
  }
  return true;
}

// averif-lint: allow(trace-stage-coverage) — a doorbell write covering many
// requests; each was already stamped "stage.tx" at descriptor commit.
void IxgbeDriver::TxFlush() ATMO_HOT_PATH(hot-path-alloc) { nic_->SetTxTail(tx_next_); }

bool IxgbeDriver::TxInPlace(VAddr iova, std::uint16_t len) {
  if (!TxInPlaceDeferred(iova, len)) {
    return false;
  }
  TxFlush();
  return true;
}

std::uint32_t IxgbeDriver::ReclaimTx() {
  std::uint32_t reclaimed = 0;
  while (tx_clean_ != tx_next_) {
    std::uint32_t index = tx_clean_ % entries_;
    std::uint64_t meta = tx_desc_[index][1];
    if ((meta & kNicDescDd) == 0) {
      break;  // device has not sent it yet
    }
    ++tx_clean_;
    ++reclaimed;
  }
  return reclaimed;
}

}  // namespace atmo
