#include "src/drivers/ixgbe_driver.h"

#include "src/vstd/check.h"

namespace atmo {

IxgbeDriver::IxgbeDriver(DmaArena* arena, SimNic* nic, std::uint32_t ring_entries)
    : arena_(arena), nic_(nic), entries_(ring_entries) {
  ATMO_CHECK(ring_entries > 0 && (ring_entries & (ring_entries - 1)) == 0,
             "ring entries must be a power of 2");
}

void IxgbeDriver::Init() {
  rx_ring_ = arena_->Alloc(entries_ * kNicDescBytes);
  tx_ring_ = arena_->Alloc(entries_ * kNicDescBytes);
  rx_buf_base_ = arena_->Alloc(static_cast<std::uint64_t>(entries_) * kIxgbeBufBytes);
  tx_buf_base_ = arena_->Alloc(static_cast<std::uint64_t>(entries_) * kIxgbeBufBytes);

  nic_->ConfigureRxRing(rx_ring_, entries_);
  nic_->ConfigureTxRing(tx_ring_, entries_);

  // Post every RX buffer: descriptor i points at buffer slot i, DD clear.
  for (std::uint32_t i = 0; i < entries_; ++i) {
    arena_->WriteU64(rx_ring_ + i * kNicDescBytes, rx_buf_base_ + i * kIxgbeBufBytes);
    arena_->WriteU64(rx_ring_ + i * kNicDescBytes + 8, 0);
  }
  rx_tail_ = entries_ - 1;  // leave one slot: full ring convention
  nic_->SetRxTail(rx_tail_);
}

std::uint32_t IxgbeDriver::RxBurst(RxFrame* out, std::uint32_t n) {
  std::uint32_t got = RxBurstInPlace(
      [&](VAddr iova, std::uint16_t len) {
        out->len = len;
        arena_->Read(iova, out->data.data(), len);
        ++out;
      },
      n);
  rx_frames_ += got;
  return got;
}

std::uint32_t IxgbeDriver::TxBurst(const TxFrame* frames, std::uint32_t n) {
  std::uint32_t sent = 0;
  while (sent < n) {
    if (tx_next_ - tx_clean_ >= entries_) {
      ReclaimTx();
      if (tx_next_ - tx_clean_ >= entries_) {
        break;  // ring genuinely full
      }
    }
    std::uint32_t index = tx_next_ % entries_;
    VAddr buf = tx_buf_base_ + index * kIxgbeBufBytes;
    std::uint16_t len = frames[sent].len;
    ATMO_CHECK(len <= kIxgbeBufBytes, "frame exceeds TX buffer");
    arena_->Write(buf, frames[sent].data, len);
    arena_->WriteU64(tx_ring_ + index * kNicDescBytes, buf);
    arena_->WriteU64(tx_ring_ + index * kNicDescBytes + 8, len & kNicDescLenMask);
    ++tx_next_;
    ++sent;
  }
  if (sent > 0) {
    nic_->SetTxTail(tx_next_);
    tx_frames_ += sent;
  }
  return sent;
}

bool IxgbeDriver::TxInPlaceDeferred(VAddr iova, std::uint16_t len) {
  if (tx_next_ - tx_clean_ >= entries_) {
    ReclaimTx();
    if (tx_next_ - tx_clean_ >= entries_) {
      return false;
    }
  }
  std::uint32_t index = tx_next_ % entries_;
  arena_->WriteU64(tx_ring_ + index * kNicDescBytes, iova);
  arena_->WriteU64(tx_ring_ + index * kNicDescBytes + 8, len & kNicDescLenMask);
  ++tx_next_;
  ++tx_frames_;
  return true;
}

void IxgbeDriver::TxFlush() { nic_->SetTxTail(tx_next_); }

bool IxgbeDriver::TxInPlace(VAddr iova, std::uint16_t len) {
  if (!TxInPlaceDeferred(iova, len)) {
    return false;
  }
  TxFlush();
  return true;
}

std::uint32_t IxgbeDriver::ReclaimTx() {
  std::uint32_t reclaimed = 0;
  while (tx_clean_ != tx_next_) {
    std::uint32_t index = tx_clean_ % entries_;
    std::uint64_t meta = arena_->ReadU64(tx_ring_ + index * kNicDescBytes + 8);
    if ((meta & kNicDescDd) == 0) {
      break;  // device has not sent it yet
    }
    ++tx_clean_;
    ++reclaimed;
  }
  return reclaimed;
}

}  // namespace atmo
