// DMA arena: device-visible memory for driver data structures.
//
// Drivers need regions that are (a) contiguous in device (IOVA) space for
// rings and buffer pools, and (b) directly accessible from the driver
// process. The arena allocates scattered physical pages, maps them at
// consecutive IOVAs in the driver's IOMMU domain, and keeps the frame
// permissions so CPU-side accesses stay within the linear-permission
// discipline. The per-page IOVA→physical translation is cached — exactly
// what a user-level driver gets from pinned, IOMMU-mapped hugepage pools in
// DPDK/SPDK.

#ifndef ATMO_SRC_DRIVERS_DMA_ARENA_H_
#define ATMO_SRC_DRIVERS_DMA_ARENA_H_

#include <cstdint>
#include <vector>

#include "src/hw/phys_mem.h"
#include "src/iommu/iommu_manager.h"
#include "src/pmem/page_allocator.h"

namespace atmo {

class DmaArena {
 public:
  DmaArena(PhysMem* mem, PageAllocator* alloc, IommuManager* iommu, IommuDomainId domain,
           VAddr iova_base, CtnrPtr owner = kNullPtr);
  ~DmaArena();

  DmaArena(const DmaArena&) = delete;
  DmaArena& operator=(const DmaArena&) = delete;

  // Allocates `bytes` (rounded up to whole pages) of IOVA-contiguous,
  // device-mapped memory. Returns the IOVA. Aborts (verification failure)
  // on OOM — arenas are sized at init time.
  VAddr Alloc(std::uint64_t bytes);

  // CPU-side access by IOVA (bounds- and mapping-checked).
  void Write(VAddr iova, const void* src, std::uint64_t len);
  void Read(VAddr iova, void* dst, std::uint64_t len) const;
  void WriteU64(VAddr iova, std::uint64_t value);
  std::uint64_t ReadU64(VAddr iova) const;

  // Physical address backing `iova` (single-page spans only).
  PAddr Translate(VAddr iova) const;

  // Zero-copy borrows: a direct pointer into the backing frame's storage
  // (DESIGN.md §14). [iova, iova+len) must lie within one 4 KiB page — true
  // by construction for kIxgbeBufBytes buffers and 16-byte descriptors. The
  // pointer stays valid for the arena's lifetime (frames are pre-touched at
  // Alloc and PhysMem frame blocks never move); the device sees every byte
  // written through it because the simulated NIC reads the same storage.
  std::uint8_t* BorrowWrite(VAddr iova, std::uint64_t len);
  const std::uint8_t* BorrowRead(VAddr iova, std::uint64_t len) const;

  IommuDomainId domain() const { return domain_; }
  std::uint64_t pages() const { return page_pa_.size(); }

 private:
  PhysMem* mem_;
  PageAllocator* alloc_;
  IommuManager* iommu_;
  IommuDomainId domain_;
  VAddr iova_base_;
  VAddr next_;
  CtnrPtr owner_;
  std::vector<PAddr> page_pa_;       // page index -> physical base
  std::vector<FramePerm> perms_;     // held linear permissions
};

}  // namespace atmo

#endif  // ATMO_SRC_DRIVERS_DMA_ARENA_H_
