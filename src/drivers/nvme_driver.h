// User-level NVMe driver (§6.5.2).
//
// Polling-mode driver over the simulated SSD: one I/O queue pair in a DMA
// arena, submission by filling SQ entries and ringing the doorbell,
// completion by polling the CQ phase bit — the structure of the paper's
// driver and of SPDK's NVMe driver (the spdk baseline when used without the
// kernel control path).

#ifndef ATMO_SRC_DRIVERS_NVME_DRIVER_H_
#define ATMO_SRC_DRIVERS_NVME_DRIVER_H_

#include <cstdint>

#include "src/drivers/dma_arena.h"
#include "src/hw/sim_nvme.h"

namespace atmo {

struct NvmeCompletion {
  std::uint32_t cid = 0;
  bool error = false;
};

class NvmeDriver {
 public:
  NvmeDriver(DmaArena* arena, SimNvme* device, std::uint32_t queue_entries);

  void Init();

  // Allocates an IOVA-contiguous data buffer of `blocks` 4 KiB blocks.
  VAddr AllocBuffer(std::uint64_t blocks);

  // Submits one command; false if the SQ is full. `cid` is echoed in the
  // completion.
  bool SubmitRead(std::uint64_t lba, std::uint64_t blocks, VAddr buffer, std::uint32_t cid);
  bool SubmitWrite(std::uint64_t lba, std::uint64_t blocks, VAddr buffer, std::uint32_t cid);
  // Rings the doorbell for everything submitted since the last ring.
  void RingDoorbell();

  // Polls up to `n` completions.
  std::uint32_t PollCompletions(NvmeCompletion* out, std::uint32_t n);

  std::uint32_t inflight() const { return sq_tail_ - completed_; }
  std::uint32_t entries() const { return entries_; }
  DmaArena* arena() { return arena_; }

 private:
  bool Submit(std::uint8_t opcode, std::uint64_t lba, std::uint64_t blocks, VAddr buffer,
              std::uint32_t cid);

  DmaArena* arena_;
  SimNvme* device_;
  std::uint32_t entries_;

  VAddr sq_ = 0;
  VAddr cq_ = 0;
  std::uint32_t sq_tail_ = 0;    // free-running producer index
  std::uint32_t cq_next_ = 0;    // free-running consumer index
  std::uint32_t completed_ = 0;  // total completions consumed
  std::uint32_t rung_ = 0;       // last doorbell value
};

}  // namespace atmo

#endif  // ATMO_SRC_DRIVERS_NVME_DRIVER_H_
