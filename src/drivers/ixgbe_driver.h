// User-level ixgbe (Intel 82599) driver (§6.5.1).
//
// Polling-mode driver over the simulated NIC: descriptor rings and 2 KiB
// packet buffers live in a DMA arena; the driver posts RX buffers, polls DD
// bits, and transmits by filling TX descriptors and bumping the device tail
// — the structure of the paper's driver (and of DPDK's ixgbe PMD, which is
// the dpdk baseline when used without the kernel control path).

#ifndef ATMO_SRC_DRIVERS_IXGBE_DRIVER_H_
#define ATMO_SRC_DRIVERS_IXGBE_DRIVER_H_

#include <cstdint>
#include <vector>

#include "src/drivers/dma_arena.h"
#include "src/hw/sim_nic.h"
#include "src/net/packet.h"

namespace atmo {

inline constexpr std::uint32_t kIxgbeBufBytes = 2048;  // never straddles a 4K page

// A received frame, copied out of the DMA buffer into caller storage.
struct RxFrame {
  std::array<std::uint8_t, kMaxFrameLen> data;
  std::uint16_t len = 0;
};

// A completed RX descriptor borrowed in place: `data` points directly into
// the DMA buffer (no copy). Valid until the matching RxReleaseBurst returns
// the buffer to the device.
struct RxView {
  const std::uint8_t* data = nullptr;
  VAddr iova = 0;
  std::uint16_t len = 0;
  // Causal trace id assigned at peek time by the token-bucket sampler
  // (src/obs/sampler.h). 0 = unsampled; nonzero ids flow through the app
  // and back into the TX commit so the flight recorder can stitch the
  // request's stages into one track.
  std::uint64_t trace_id = 0;
};

// A frame to transmit.
struct TxFrame {
  const std::uint8_t* data = nullptr;
  std::uint16_t len = 0;
};

class IxgbeDriver {
 public:
  IxgbeDriver(DmaArena* arena, SimNic* nic, std::uint32_t ring_entries);

  // Allocates rings + buffer pools, programs the device, posts all RX
  // buffers.
  void Init();

  // Polls completed RX descriptors; copies up to `n` frames into `out` and
  // immediately re-posts the buffers. Returns frames received. The copy-out
  // is a counted payload copy (obs::CopyPayload) — the zero-copy paths
  // below never hit it.
  std::uint32_t RxBurst(RxFrame* out, std::uint32_t n);

  // Zero-copy-ish processing variant: calls `fn(iova, len)` for each
  // completed descriptor (the packet stays in the DMA buffer; `fn` may read
  // or rewrite it through the arena), then re-posts. Used by forwarding
  // apps (Maglev) to avoid the extra copy.
  template <typename Fn>
  std::uint32_t RxBurstInPlace(Fn&& fn, std::uint32_t n) {
    std::uint32_t got = 0;
    while (got < n) {
      std::uint32_t index = rx_next_ % entries_;
      std::uint64_t meta = rx_desc_[index][1];
      if ((meta & kNicDescDd) == 0) {
        break;
      }
      fn(rx_buf_base_ + index * kIxgbeBufBytes,
         static_cast<std::uint16_t>(meta & kNicDescLenMask));
      rx_desc_[index][1] = 0;  // re-arm
      ++rx_next_;
      ++got;
    }
    if (got > 0) {
      rx_tail_ += got;
      nic_->SetRxTail(rx_tail_);
    }
    return got;
  }

  // Descriptor-burst, fully zero-copy RX (DESIGN.md §14): fills up to `n`
  // views from completed descriptors WITHOUT re-arming — the payloads stay
  // in the DMA arena, borrowed by the caller. No driver state changes (the
  // only side effect is drawing trace-id decisions from the obs sampler, so
  // peek once per burst); the caller processes the views in place, then
  // returns the oldest `k` buffers with RxReleaseBurst(k), which re-arms
  // them all under ONE tail doorbell write.
  std::uint32_t RxPeekBurst(RxView* out, std::uint32_t n) const;
  void RxReleaseBurst(std::uint32_t n);

  // Zero-copy TX: claims the next descriptor's 2 KiB buffer so the caller
  // can build the egress frame directly in DMA memory (nullptr when the
  // ring is full even after reclaim). TxCommitDeferred publishes the
  // claimed buffer as a queued frame — descriptor write only, no doorbell;
  // TxFlush() rings it once per batch.
  std::uint8_t* TxClaim();
  void TxCommitDeferred(std::uint16_t len, std::uint64_t trace_id = 0);

  // Queues up to `n` frames for transmission (copies into TX buffers, bumps
  // the device tail). Returns frames queued (ring-full limits it).
  std::uint32_t TxBurst(const TxFrame* frames, std::uint32_t n);
  // In-place transmit of a frame already residing in the arena (forwarding
  // path): points the next TX descriptor at `iova` directly.
  bool TxInPlace(VAddr iova, std::uint16_t len);
  // Batched variant: queues the descriptor without ringing the doorbell;
  // TxFlush() rings it once for the whole batch. A nonzero `trace_id`
  // stamps a "stage.tx" instant, closing the sampled request's chain.
  bool TxInPlaceDeferred(VAddr iova, std::uint16_t len, std::uint64_t trace_id = 0);
  void TxFlush();

  // Reclaims completed TX descriptors; returns how many.
  std::uint32_t ReclaimTx();

  std::uint32_t entries() const { return entries_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t tx_frames() const { return tx_frames_; }

 private:
  DmaArena* arena_;
  SimNic* nic_;
  std::uint32_t entries_;

  VAddr rx_ring_ = 0;
  VAddr tx_ring_ = 0;
  VAddr rx_buf_base_ = 0;
  VAddr tx_buf_base_ = 0;

  std::uint32_t rx_next_ = 0;   // next descriptor to poll
  std::uint32_t rx_tail_ = 0;   // free-running tail mirror
  std::uint32_t tx_next_ = 0;   // next descriptor to fill (free-running)
  std::uint32_t tx_clean_ = 0;  // next descriptor to reclaim

  // Borrowed pointers into the DMA arena, cached at Init (descriptor i's
  // {addr, meta} pair and buffer i's base) — the hot path touches rings and
  // buffers without a per-access IOVA translation, exactly like a PMD that
  // keeps virtual addresses of its pinned pool. Descriptors and 2 KiB
  // buffers never straddle a page, so single borrows cover them.
  std::vector<std::uint64_t*> rx_desc_;
  std::vector<std::uint64_t*> tx_desc_;
  std::vector<std::uint8_t*> rx_buf_;
  std::vector<std::uint8_t*> tx_buf_;

  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_frames_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_DRIVERS_IXGBE_DRIVER_H_
