#include "src/drivers/nvme_driver.h"

#include "src/vstd/check.h"

namespace atmo {

NvmeDriver::NvmeDriver(DmaArena* arena, SimNvme* device, std::uint32_t queue_entries)
    : arena_(arena), device_(device), entries_(queue_entries) {
  ATMO_CHECK(queue_entries > 0 && (queue_entries & (queue_entries - 1)) == 0,
             "queue entries must be a power of 2");
}

void NvmeDriver::Init() {
  sq_ = arena_->Alloc(entries_ * kNvmeSqEntryBytes);
  cq_ = arena_->Alloc(entries_ * kNvmeCqEntryBytes);
  device_->ConfigureQueues(sq_, cq_, entries_);
}

VAddr NvmeDriver::AllocBuffer(std::uint64_t blocks) {
  return arena_->Alloc(blocks * kNvmeBlockBytes);
}

bool NvmeDriver::Submit(std::uint8_t opcode, std::uint64_t lba, std::uint64_t blocks,
                        VAddr buffer, std::uint32_t cid) {
  if (sq_tail_ - completed_ >= entries_) {
    return false;  // queue full (completions outstanding)
  }
  std::uint32_t index = sq_tail_ % entries_;
  VAddr entry = sq_ + index * kNvmeSqEntryBytes;
  arena_->WriteU64(entry, static_cast<std::uint64_t>(opcode) |
                              (static_cast<std::uint64_t>(cid) << 32));
  arena_->WriteU64(entry + 8, lba);
  arena_->WriteU64(entry + 16, blocks);
  arena_->WriteU64(entry + 24, buffer);
  ++sq_tail_;
  return true;
}

bool NvmeDriver::SubmitRead(std::uint64_t lba, std::uint64_t blocks, VAddr buffer,
                            std::uint32_t cid) {
  return Submit(kNvmeOpRead, lba, blocks, buffer, cid);
}

bool NvmeDriver::SubmitWrite(std::uint64_t lba, std::uint64_t blocks, VAddr buffer,
                             std::uint32_t cid) {
  return Submit(kNvmeOpWrite, lba, blocks, buffer, cid);
}

void NvmeDriver::RingDoorbell() {
  if (rung_ != sq_tail_) {
    device_->RingSqDoorbell(sq_tail_);
    rung_ = sq_tail_;
  }
}

std::uint32_t NvmeDriver::PollCompletions(NvmeCompletion* out, std::uint32_t n) {
  std::uint32_t got = 0;
  while (got < n) {
    std::uint32_t index = cq_next_ % entries_;
    std::uint64_t entry = arena_->ReadU64(cq_ + index * kNvmeCqEntryBytes);
    std::uint64_t expect_phase = ((cq_next_ / entries_) & 1) ^ 1;
    if ((entry >> 63) != expect_phase) {
      break;  // not posted yet
    }
    out[got].cid = static_cast<std::uint32_t>(entry & 0xffffffff);
    out[got].error = (entry & (1ull << 32)) != 0;
    ++cq_next_;
    ++completed_;
    ++got;
  }
  return got;
}

}  // namespace atmo
