#include "src/verif/obs_export.h"

#include "src/obs/exporters.h"
#include "src/obs/json_writer.h"

namespace atmo {

void ExportCheckStats(const CheckStats& stats, obs::MetricsRegistry* registry,
                      const std::string& prefix) {
  registry->counter(prefix + "steps").Add(stats.steps);
  registry->counter(prefix + "wf_checks").Add(stats.wf_checks);
  registry->counter(prefix + "audit_passes").Add(stats.audit_passes);
  registry->counter(prefix + "full_abstractions").Add(stats.full_abstractions);
  registry->counter(prefix + "delta_abstractions").Add(stats.delta_abstractions);
  registry->counter(prefix + "dirty_entries").Add(stats.dirty_entries);
  registry->counter(prefix + "abstraction_ns").Add(stats.abstraction_ns);
  registry->counter(prefix + "spec_ns").Add(stats.spec_ns);
  registry->counter(prefix + "wf_ns").Add(stats.wf_ns);
  registry->counter(prefix + "audit_ns").Add(stats.audit_ns);
  registry->counter(prefix + "batch_drains").Add(stats.batch_drains);
  registry->counter(prefix + "batched_entries").Add(stats.batched_entries);
  registry->counter(prefix + "heap_allocs").Add(stats.heap_allocs);
  registry->counter(prefix + "arena_allocs").Add(stats.arena_allocs);
  registry->counter(prefix + "arena_resets").Add(stats.arena_resets);
  registry->counter(prefix + "arena_refused_resets")
      .Add(stats.arena_refused_resets);
  registry->gauge(prefix + "max_dirty_entries")
      .Set(static_cast<double>(stats.max_dirty_entries));
  if (stats.steps != 0) {
    registry->gauge(prefix + "heap_allocs_per_step")
        .Set(static_cast<double>(stats.heap_allocs) /
             static_cast<double>(stats.steps));
  }
}

void ExportSweepMetrics(const SweepReport& report, obs::MetricsRegistry* registry) {
  ExportCheckStats(report.stats, registry);
  registry->counter("sweep.total_steps").Add(report.total_steps);
  registry->counter("sweep.shards").Add(report.shards.size());
  registry->counter("sweep.coverage_cells").Add(report.coverage.NonZeroCells());
  registry->gauge("sweep.workers").Set(static_cast<double>(report.workers));
  registry->gauge("sweep.wall_seconds").Set(report.wall_seconds);
  registry->gauge("sweep.steps_per_sec").Set(report.steps_per_sec);
  obs::Histogram& steps = registry->histogram("sweep.shard_steps");
  obs::Histogram& wall = registry->histogram("sweep.shard_wall_us");
  obs::Histogram& wait = registry->histogram("sweep.shard_queue_wait_us");
  for (const ShardResult& shard : report.shards) {
    steps.Observe(shard.steps);
    wall.Observe(static_cast<std::uint64_t>(shard.wall_seconds * 1e6));
    wait.Observe(static_cast<std::uint64_t>(shard.queue_wait_seconds * 1e6));
    if (!shard.ok) {
      registry->counter("sweep.shards_failed").Add(1);
    }
  }
}

std::vector<obs::TraceEvent> MergedSweepTrace(const SweepReport& report) {
  std::vector<obs::TraceEvent> events;
  for (const ShardResult& shard : report.shards) {
    events.insert(events.end(), shard.trace.begin(), shard.trace.end());
  }
  return events;
}

bool WriteSweepTrace(const SweepReport& report, const std::string& path) {
  return obs::WriteTextFile(path, obs::ChromeTraceJson(MergedSweepTrace(report)));
}

std::string SweepFailureForensicsJson(const ShardResult& result, std::size_t tail) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  std::size_t begin = result.trace.size() > tail ? result.trace.size() - tail : 0;
  for (std::size_t i = begin; i < result.trace.size(); ++i) {
    obs::AppendTraceEvent(&w, result.trace[i]);
  }
  w.EndArray();
  w.Key("otherData").BeginObject();
  w.KV("shard", result.shard);
  w.KV("seed", result.seed);
  w.KV("steps", result.steps);
  w.KV("ok", result.ok);
  w.KV("failure", result.failure.c_str());
  if (result.token) {
    w.Key("replay_token").BeginObject();
    w.KV("master_seed", result.token->master_seed);
    w.KV("shard", result.token->shard);
    w.KV("step", result.token->step);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

bool WriteSweepFailureForensics(const ShardResult& result, std::size_t tail,
                                const std::string& path) {
  return obs::WriteTextFile(path, SweepFailureForensicsJson(result, tail));
}

}  // namespace atmo
