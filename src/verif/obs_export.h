// Bridges from the verification layer into atmo::obs — the obs library
// cannot depend on verif, so every CheckStats/SweepReport -> metrics/trace
// conversion lives here.
//
// ExportCheckStats turns the checker's counters into registry metrics;
// ExportSweepMetrics adds the sweep-level view (per-shard step and latency
// histograms, throughput gauges). MergedSweepTrace flattens per-shard
// flight-recorder snapshots into one Chrome-trace event list (shards are
// separate tids), and the forensics writers serialize a failing shard's
// trace tail next to its ReplayToken so a red sweep always leaves enough
// behind to rerun and view the failure.

#ifndef ATMO_SRC_VERIF_OBS_EXPORT_H_
#define ATMO_SRC_VERIF_OBS_EXPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"
#include "src/verif/sweep_harness.h"

namespace atmo {

// CheckStats -> counters/gauges under `prefix` (e.g. "check."): steps,
// wf_checks, audit_passes, full/delta abstractions, dirty entries and the
// per-phase nanosecond totals.
void ExportCheckStats(const CheckStats& stats, obs::MetricsRegistry* registry,
                      const std::string& prefix = "check.");

// SweepReport -> registry: merged CheckStats under "check.", sweep totals
// ("sweep.total_steps", "sweep.shards", ...), throughput gauges and
// per-shard histograms ("sweep.shard_steps", "sweep.shard_wall_us",
// "sweep.shard_queue_wait_us").
void ExportSweepMetrics(const SweepReport& report, obs::MetricsRegistry* registry);

// All shard traces concatenated in shard order. Each shard recorded with
// tid = shard index, so the merged list renders as one track per shard.
std::vector<obs::TraceEvent> MergedSweepTrace(const SweepReport& report);

// Chrome trace JSON of MergedSweepTrace written to `path`.
bool WriteSweepTrace(const SweepReport& report, const std::string& path);

// Forensics document for one failing shard: the last `tail` trace events
// plus otherData carrying the ReplayToken, failure message and seed.
std::string SweepFailureForensicsJson(const ShardResult& result, std::size_t tail);
bool WriteSweepFailureForensics(const ShardResult& result, std::size_t tail,
                                const std::string& path);

}  // namespace atmo

#endif  // ATMO_SRC_VERIF_OBS_EXPORT_H_
