#include "src/verif/invariant_registry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/obs/flight_recorder.h"
#include "src/pagetable/refinement.h"

namespace atmo {

bool SuiteReport::AllOk() const {
  for (const CheckOutcome& outcome : outcomes) {
    if (!outcome.ok) {
      return false;
    }
  }
  return true;
}

double SuiteReport::TotalCheckSeconds() const {
  double total = 0.0;
  for (const CheckOutcome& outcome : outcomes) {
    total += outcome.seconds;
  }
  return total;
}

void InvariantRegistry::Register(std::string name, CheckFn check) {
  checks_.push_back(Entry{std::move(name), std::move(check)});
}

SuiteReport InvariantRegistry::RunAll(const Kernel& kernel, unsigned threads) const {
  // Span on the calling thread only: worker threads inherit no recorder
  // (FlightRecorder is single-owner), so the suite traces as one audit span.
  ATMO_OBS_SPAN_ARG(obs::kCatCheck, "check.invariant_suite", "checks", checks_.size());
  SuiteReport report;
  report.outcomes.resize(checks_.size());

  auto wall_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    while (true) {
      std::size_t i = next.fetch_add(1);
      if (i >= checks_.size()) {
        return;
      }
      auto start = std::chrono::steady_clock::now();
      InvResult result = checks_[i].check(kernel);
      auto end = std::chrono::steady_clock::now();
      CheckOutcome& out = report.outcomes[i];
      out.name = checks_[i].name;
      out.ok = result.ok;
      out.detail = result.detail;
      out.seconds = std::chrono::duration<double>(end - start).count();
    }
  };

  // Never spawn more workers than there are checks: an excess worker would
  // pay thread creation only to pop an out-of-range index and exit.
  unsigned spawn = static_cast<unsigned>(
      std::min<std::size_t>(threads, checks_.size()));
  if (spawn <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (unsigned i = 0; i < spawn; ++i) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return report;
}

InvariantRegistry InvariantRegistry::StandardSuite(bool recursive_pt) {
  InvariantRegistry reg;
  reg.Register("container_tree_wf",
               [](const Kernel& k) { return ContainerTreeWf(k.pm()); });
  reg.Register("process_tree_wf", [](const Kernel& k) { return ProcessTreeWf(k.pm()); });
  reg.Register("threads_wf", [](const Kernel& k) { return ThreadsWf(k.pm()); });
  reg.Register("endpoints_wf", [](const Kernel& k) { return EndpointsWf(k.pm()); });
  reg.Register("scheduler_wf", [](const Kernel& k) { return SchedulerWf(k.pm()); });
  reg.Register("quota_wf", [](const Kernel& k) { return QuotaWf(k.pm(), k.alloc()); });
  reg.Register("page_allocator_wf", [](const Kernel& k) {
    return k.alloc().Wf() ? InvResult{} : InvResult::Fail("allocator ill-formed");
  });
  reg.Register("vm_wf", [](const Kernel& k) {
    return k.vm().Wf(k.mem(), k.alloc()) ? InvResult{}
                                         : InvResult::Fail("vm subsystem ill-formed");
  });
  reg.Register("iommu_wf", [](const Kernel& k) {
    return k.iommu().Wf() ? InvResult{} : InvResult::Fail("iommu subsystem ill-formed");
  });
  reg.Register("memory_safety_wf", [](const Kernel& k) { return k.MemorySafetyWf(); });

  // Page-table refinement: one check per address space plus per IOMMU
  // domain, in the flat or recursive style.
  reg.Register(recursive_pt ? "pt_refinement(recursive)" : "pt_refinement(flat)",
               [recursive_pt](const Kernel& k) -> InvResult {
                 for (const auto& [proc, table] : k.vm().tables()) {
                   RefinementReport r = recursive_pt
                                            ? RecursiveRefinementCheck(table, k.mem())
                                            : FlatRefinementCheck(table, k.mem());
                   if (!r.ok) {
                     return InvResult::Fail(r.detail);
                   }
                   if (!table.StructureWf(k.mem())) {
                     return InvResult::Fail("page-table structure ill-formed");
                   }
                 }
                 for (const auto& [id, table] : k.iommu().domains()) {
                   RefinementReport r = recursive_pt
                                            ? RecursiveRefinementCheck(table, k.mem())
                                            : FlatRefinementCheck(table, k.mem());
                   if (!r.ok) {
                     return InvResult::Fail(r.detail);
                   }
                 }
                 return InvResult{};
               });
  reg.Register("pt_mmu_cross_check", [](const Kernel& k) -> InvResult {
    for (const auto& [proc, table] : k.vm().tables()) {
      RefinementReport r = MmuCrossCheck(table, k.mmu());
      if (!r.ok) {
        return InvResult::Fail(r.detail);
      }
    }
    return InvResult{};
  });
  return reg;
}

}  // namespace atmo
