// Parallel sharded trace exploration — the runtime analog of the paper's
// parallel verification (Table 2's 8-thread column).
//
// The paper's whole-kernel re-verification is fast because it decomposes
// into independent per-function SMT queries that run on all cores. The
// runtime substitute decomposes the same way: a sweep is N independent
// trace *shards*, each a deterministic randomized syscall trace (TraceGen)
// driven through its own private Kernel + RefinementChecker. Shards share
// no mutable state — worker threads pull shard indices off an atomic
// counter, run each shard to completion in isolation, and write the result
// into that shard's pre-allocated slot. Per-shard seeds derive from one
// master seed via splitmix64, so the merged report is a pure function of
// (master_seed, shards, steps_per_shard, checker options): 1 worker and 8
// workers produce bit-identical coverage, verdicts and step counts.
//
// A check failure inside a shard (spec, total_wf, or audit violation) is
// caught at the shard boundary and recorded as a ReplayToken — (master
// seed, shard, step) — which Replay() reruns single-threaded to reproduce
// the exact failing trace for debugging.

#ifndef ATMO_SRC_VERIF_SWEEP_HARNESS_H_
#define ATMO_SRC_VERIF_SWEEP_HARNESS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/obs/trace_event.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/trace_gen.h"
#include "src/vstd/thread_annotations.h"

namespace atmo {

inline constexpr std::size_t kSysOpCount =
    static_cast<std::size_t>(SysOp::kObsQuery) + 1;
inline constexpr std::size_t kSysErrorCount =
    static_cast<std::size_t>(SysError::kWouldFault) + 1;

// Syscall-op × error-code hit counts: which regions of the verified surface
// a sweep actually exercised (both success and every error path).
struct CoverageMatrix {
  std::uint64_t counts[kSysOpCount][kSysErrorCount] = {};

  void Record(SysOp op, SysError error) {
    ++counts[static_cast<std::size_t>(op)][static_cast<std::size_t>(error)];
  }
  void Merge(const CoverageMatrix& other);
  std::uint64_t Total() const;
  std::uint64_t NonZeroCells() const;

  friend bool operator==(const CoverageMatrix&, const CoverageMatrix&) = default;
};

// Everything needed to rerun one failing trace single-threaded: the shard's
// trace is a pure function of the master seed and shard index, and `step`
// is where the check violation fired.
struct ReplayToken {
  std::uint64_t master_seed = 0;
  std::uint64_t shard = 0;
  std::uint64_t step = 0;

  friend bool operator==(const ReplayToken&, const ReplayToken&) = default;
};

struct ShardResult {
  std::uint64_t shard = 0;
  std::uint64_t seed = 0;    // splitmix64-derived trace seed
  std::uint64_t steps = 0;   // checked steps completed
  bool ok = true;
  std::string failure;       // check-violation message when !ok
  std::optional<ReplayToken> token;
  CoverageMatrix coverage;
  CheckStats stats;
  // Flight-recorder snapshot when the shard ran traced (Options::trace,
  // process-wide obs enable, or Replay). Virtual-clock timestamps, so the
  // trace is a pure function of the shard seed — excluded from SameOutcome
  // anyway, like the wall-clock fields below.
  std::vector<obs::TraceEvent> trace;
  double wall_seconds = 0.0;        // time inside RunShard
  double queue_wait_seconds = 0.0;  // sweep start -> worker claimed shard
};

// Live, cross-thread view of a sweep in flight. This is the only mutable
// state the workers share besides the shard counter, so it carries the full
// thread-safety contract: every field is GUARDED_BY the mutex and Clang's
// -Wthread-safety analysis rejects any unlocked access at compile time.
//
// Determinism note: completion counters depend on scheduling, so nothing
// here feeds the deterministic portion of SweepReport except first_failure,
// which is ordered by shard index (not completion time) — the lowest-index
// failing shard wins regardless of which worker finishes first.
class SweepProgress {
 public:
  struct Snapshot {
    std::uint64_t shards_completed = 0;
    std::uint64_t shards_failed = 0;
    std::uint64_t steps_completed = 0;
    std::optional<ReplayToken> first_failure;  // lowest failing shard index
  };

  void RecordShard(const ShardResult& result) ATMO_EXCLUDES(mu_);
  Snapshot TakeSnapshot() const ATMO_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::uint64_t shards_completed_ ATMO_GUARDED_BY(mu_) = 0;
  std::uint64_t shards_failed_ ATMO_GUARDED_BY(mu_) = 0;
  std::uint64_t steps_completed_ ATMO_GUARDED_BY(mu_) = 0;
  std::optional<ReplayToken> first_failure_ ATMO_GUARDED_BY(mu_);
};

struct SweepReport {
  std::vector<ShardResult> shards;  // indexed by shard, merge order fixed
  CoverageMatrix coverage;          // elementwise sum over shards
  CheckStats stats;                 // summed counters (max for max_dirty)
  std::uint64_t total_steps = 0;
  unsigned workers = 0;
  double wall_seconds = 0.0;
  double steps_per_sec = 0.0;
  // Lowest-shard-index failure, from SweepProgress; deterministic across
  // worker counts (equal to Failures().front() by construction).
  std::optional<ReplayToken> first_failure;

  bool AllOk() const;
  std::vector<ReplayToken> Failures() const;
  // True when the deterministic portion of two reports agrees: coverage,
  // verdicts, per-shard step counts and seeds. Wall-clock and ns counters
  // are excluded — they legitimately vary across runs and worker counts.
  bool SameOutcome(const SweepReport& other) const;
};

class SweepHarness {
 public:
  // Called before each generated step; lets tests break a kernel at a
  // chosen (shard, step) to prove the parallel harness catches it and the
  // replay token reproduces it.
  using FaultHook =
      std::function<void(TraceFixture* fixture, std::uint64_t shard, std::uint64_t step)>;

  struct Options {
    std::uint64_t master_seed = 1;
    std::uint64_t shards = 8;
    std::uint64_t steps_per_shard = 1000;
    unsigned workers = 1;
    // Trace-scale checker defaults: sampled total_wf, periodic audit, and a
    // preallocated chunk per shard arena so shards never grow chunks from
    // the global heap mid-trace (the percpu/prealloc idiom, DESIGN.md §14).
    RefinementChecker::Options checker{
        .check_wf_every = 16, .audit_every = 64, .incremental = true,
        .use_arena = true,
        .arena_reserve_bytes = SpecArena::kDefaultChunkBytes};
    FaultHook fault_hook;
    // Mix syscall-ring ops (setup/submit/enter) into the generated traces.
    // Off by default so the long-standing sweep goldens keep their exact
    // byte-for-byte traces; ring-aware sweeps opt in (see
    // tests/syscall_ring_test.cc and TraceGen::Options).
    bool ring_ops = false;
    // Mix zero-copy page-grant ops (borrow/move grant sends, kGrantReturn)
    // into the generated traces; same golden-stability opt-in as ring_ops.
    bool grant_ops = false;
    // Mix kObsQuery introspection calls (mixed-validity destination VAs)
    // into the generated traces; same golden-stability opt-in as ring_ops.
    bool obs_ops = false;
    // Optional external progress tracker: workers record each completed
    // shard into it, so another thread can poll TakeSnapshot() while the
    // sweep runs. Run() also maintains an internal one to derive
    // SweepReport::first_failure.
    SweepProgress* progress = nullptr;
    // Force flight-recorder tracing for every shard regardless of the
    // process-wide obs enable flag. Shard recorders always run the virtual
    // clock, so traces are bit-identical across worker counts.
    bool trace = false;
    std::size_t trace_capacity = 2048;  // per-shard ring capacity
    std::size_t forensics_tail = 64;    // events kept in a failure dump
  };

  explicit SweepHarness(Options options) : options_(std::move(options)) {}

  // Runs all shards across min(workers, shards) threads and merges the
  // per-shard results in shard order (merging is race-free by construction:
  // each worker writes only its claimed shard's slot, and the merge happens
  // after every worker joined).
  SweepReport Run() const;

  // Reruns one shard single-threaded with tracing forced on, so every
  // replayed failure comes back with a flight-recorder trace attached even
  // when the original sweep ran untraced.
  ShardResult Replay(const ReplayToken& token) const;

  static std::uint64_t ShardSeed(std::uint64_t master_seed, std::uint64_t shard);

  const Options& options() const { return options_; }

 private:
  ShardResult RunShard(std::uint64_t shard, bool force_trace) const;
  // When ATMO_OBS_DUMP_DIR is set, writes a forensics JSON for a failing
  // traced shard next to its replay token.
  void MaybeDumpForensics(const ShardResult& result) const;

  Options options_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VERIF_SWEEP_HARNESS_H_
