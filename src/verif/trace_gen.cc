#include "src/verif/trace_gen.h"

#include <utility>

#include "src/vstd/check.h"

namespace atmo {

TraceFixture TraceFixture::Boot() {
  BootConfig config;
  config.frames = 2048;
  config.reserved_frames = 16;
  TraceFixture f{std::move(*Kernel::Boot(config))};
  auto c = f.kernel.BootCreateContainer(f.kernel.root_container(), 1200, ~0ull);
  f.ctnr = c.value;
  f.procs[0] = f.kernel.BootCreateProcess(f.ctnr).value;
  f.procs[1] = f.kernel.BootCreateProcess(f.ctnr).value;
  f.thrds[0] = f.kernel.BootCreateThread(f.procs[0]).value;
  f.thrds[1] = f.kernel.BootCreateThread(f.procs[0]).value;
  f.thrds[2] = f.kernel.BootCreateThread(f.procs[1]).value;
  return f;
}

void TraceFixture::SetupIpcAndDma() {
  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  kernel.Dispatch(thrds[0]);
  SyscallRet e = kernel.Exec(thrds[0], ne);
  ATMO_CHECK(e.ok(), "trace fixture: endpoint creation failed");
  ATMO_CHECK(kernel.pm_mut().BindEndpoint(thrds[2], 0, e.value) == ProcError::kOk,
             "trace fixture: endpoint bind failed");
  // One DMA-donor page per thread, outside the churned mmap window.
  for (int ti = 0; ti < kThreads; ++ti) {
    Syscall mm;
    mm.op = SysOp::kMmap;
    mm.va_range =
        VaRange{kDmaVaBase + static_cast<VAddr>(ti) * kPageSize4K, 1, PageSize::k4K};
    mm.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
    kernel.Dispatch(thrds[ti]);
    ATMO_CHECK(kernel.Exec(thrds[ti], mm).ok(), "trace fixture: DMA-donor mmap failed");
  }
}

bool TraceFixture::Dispatchable(ThrdPtr t) const {
  ThreadState s = kernel.pm().GetThread(t).state;
  return s == ThreadState::kRunning || s == ThreadState::kRunnable;
}

TraceGen::Cmd TraceGen::Gen(const TraceFixture& f) {
  for (;;) {
    std::uint64_t r = rng.Next();
    int ti = static_cast<int>(r % 3);
    if (!f.Dispatchable(f.thrds[ti])) {
      // A rendezvous is outstanding: complete it from a runnable peer so
      // the blocked thread wakes (keeps at most one thread blocked).
      ThreadState s = f.kernel.pm().GetThread(f.thrds[ti]).state;
      for (int peer = 0; peer < 3; ++peer) {
        if (peer == ti || !f.Dispatchable(f.thrds[peer])) {
          continue;
        }
        Syscall c;
        c.edpt_idx = 0;
        c.op = s == ThreadState::kBlockedRecv ? SysOp::kSend : SysOp::kRecv;
        if (c.op == SysOp::kSend) {
          c.payload.scalars[0] = r;
        }
        return Cmd{peer, c};
      }
      continue;  // should be unreachable: ≥2 threads stay runnable
    }

    Syscall c;
    // The classic distribution is 16-way and must stay bit-identical for
    // the goldens; ring mode widens it to 19, grant mode adds 2 more ways
    // and obs mode 1 more on top — each remaps every r, so the widened
    // traces are separate families, not supersets.
    const std::uint64_t ways =
        (ring_ops ? 19 : 16) + (grant_ops ? 2 : 0) + (obs_ops ? 1 : 0);
    const std::uint64_t sel = r % ways;
    if (obs_ops && sel == ways - 1) {
      // Introspection snapshot with a mixed-validity destination: usually a
      // churned-window slot (unmapped → kInvalid, read-only → kDenied),
      // sometimes the thread's DMA donor (always writable → kOk), the grant
      // window (live borrows are read-only → kDenied), or an unaligned
      // interior address (→ kInvalid).
      c.op = SysOp::kObsQuery;
      VAddr va;
      switch ((r >> 8) % 8) {
        case 0:
          va = TraceFixture::kDmaVaBase + static_cast<VAddr>(ti) * kPageSize4K;
          break;
        case 1:
          va = TraceFixture::kGrantVaBase + ((r >> 20) % 16) * kPageSize4K;
          break;
        case 2:
          va = 0x100000ull * (ti + 1) + ((r >> 12) % 48) * kPageSize4K + 0x40;
          break;
        default:
          va = 0x100000ull * (ti + 1) + ((r >> 12) % 48) * kPageSize4K;
          break;
      }
      c.va_range = VaRange{va, 1, PageSize::k4K};
      return Cmd{ti, c};
    }
    // Grant mode owns the two ways below the (optional) obs way.
    const std::uint64_t grant_base = ways - (obs_ops ? 1 : 0) - 2;
    if (grant_ops && sel >= grant_base) {
      if (sel == grant_base) {
        // Send carrying a page grant from the churned mmap window. Mixed
        // validity by construction: the source VA may be unmapped
        // (kInvalid), already on loan (kDenied), multiply mapped
        // (kDenied), or a borrow may ask for writable rights (kInvalid);
        // a resolved grant then faces an occupied destination slot at
        // delivery (kWouldFault).
        c.op = SysOp::kSend;
        c.edpt_idx = 0;
        c.payload.scalars[0] = r >> 8;
        GrantMode mode = (r >> 10) % 4 == 0 ? GrantMode::kMove : GrantMode::kBorrow;
        c.payload.page = PageGrant{
            .page = 0x100000ull * (ti + 1) + ((r >> 12) % 48) * kPageSize4K,
            .size = PageSize::k4K,
            .dest_va = TraceFixture::kGrantVaBase + ((r >> 20) % 16) * kPageSize4K,
            .perm = MapEntryPerm{.writable = (r >> 18) % 8 == 0, .user = true,
                                 .no_execute = true},
            .mode = mode};
        return Cmd{ti, c};
      }
      // Return a borrowed page: usually a grant-window slot (live loans sit
      // there), sometimes an ordinary mapping or a hole for the kDenied /
      // kInvalid arms.
      c.op = SysOp::kGrantReturn;
      VAddr va = (r >> 8) % 4 == 0
                     ? 0x100000ull * (ti + 1) + ((r >> 12) % 48) * kPageSize4K
                     : TraceFixture::kGrantVaBase + ((r >> 20) % 16) * kPageSize4K;
      c.va_range = VaRange{va, 1, PageSize::k4K};
      return Cmd{ti, c};
    }
    switch (sel) {
      case 0:
      case 1:
        c.op = SysOp::kYield;
        return Cmd{ti, c};
      case 2:
      case 3: {  // mmap in a small per-thread window: overlaps → kInvalid
        c.op = SysOp::kMmap;
        c.va_range = VaRange{0x100000ull * (ti + 1) + ((r >> 8) % 48) * kPageSize4K, 1,
                             PageSize::k4K};
        c.map_perm = MapEntryPerm{.writable = (r >> 16) % 2 == 0, .user = true,
                                  .no_execute = true};
        return Cmd{ti, c};
      }
      case 4:
      case 5: {  // munmap over the same window: unmapped → kInvalid
        c.op = SysOp::kMunmap;
        c.va_range = VaRange{0x100000ull * (ti + 1) + ((r >> 8) % 48) * kPageSize4K, 1,
                             PageSize::k4K};
        return Cmd{ti, c};
      }
      case 6: {  // deliberately unaligned mmap → kInvalid
        c.op = SysOp::kMmap;
        c.va_range = VaRange{0x100000ull * (ti + 1) + 0x123, 1, PageSize::k4K};
        c.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
        return Cmd{ti, c};
      }
      case 7: {  // new endpoint in a random slot: occupied → error
        c.op = SysOp::kNewEndpoint;
        c.edpt_idx = static_cast<EdptIdx>(1 + (r >> 8) % (kMaxEdptDescriptors - 1));
        return Cmd{ti, c};
      }
      case 8: {  // unbind a random slot (never the IPC slot 0)
        c.op = SysOp::kUnbindEndpoint;
        c.edpt_idx = static_cast<EdptIdx>(1 + (r >> 8) % (kMaxEdptDescriptors - 1));
        return Cmd{ti, c};
      }
      case 9: {  // start a rendezvous: blocks until the generated
                 // complement (above) wakes it
        c.op = (r >> 8) % 2 == 0 ? SysOp::kRecv : SysOp::kSend;
        c.edpt_idx = 0;
        if (c.op == SysOp::kSend) {
          c.payload.scalars[0] = r >> 8;
        }
        return Cmd{ti, c};
      }
      case 10: {  // child container: tiny or over-quota
        c.op = SysOp::kNewContainer;
        c.quota = (r >> 8) % 4 == 0 ? 1u << 20 : 2 + (r >> 8) % 6;
        return Cmd{ti, c};
      }
      case 11: {  // kill a previously created child container
        if (disposable.empty()) {
          continue;
        }
        c.op = SysOp::kKillContainer;
        c.target = disposable[(r >> 8) % disposable.size()];
        return Cmd{ti, c};
      }
      case 12: {  // thread churn in the caller's process
        c.op = SysOp::kNewThread;
        return Cmd{ti, c};
      }
      case 13: {
        c.op = SysOp::kIommuCreateDomain;
        return Cmd{ti, c};
      }
      case 14: {  // attach a device to a real or bogus domain
        c.op = SysOp::kIommuAttachDevice;
        c.iommu_domain = PickDomain(r);
        c.device = static_cast<std::uint32_t>((r >> 16) % 6);
        return Cmd{ti, c};
      }
      case 15: {  // DMA map/unmap with mixed-validity domain and iova
        c.op = (r >> 4) % 2 == 0 ? SysOp::kIommuMapDma : SysOp::kIommuUnmapDma;
        c.iommu_domain = PickDomain(r);
        c.iova = ((r >> 16) % 8) * kPageSize4K;
        c.dma_va = TraceFixture::kDmaVaBase + static_cast<VAddr>(ti) * kPageSize4K;
        return Cmd{ti, c};
      }
      case 16: {  // ring setup: sometimes invalid capacity, sometimes atomic
        c.op = SysOp::kRingSetup;
        c.ring_entries = (r >> 8) % 8 == 0 ? 3u : (4u << ((r >> 10) % 2));
        c.ring_flags = (r >> 12) % 2 == 0 ? kRingDrainAtomic : 0u;
        last_thread_ = ti;
        return Cmd{ti, c};
      }
      case 17: {  // submit a deferred op into an owned (or bogus) ring
        c.op = SysOp::kRingSubmit;
        c.ring_id = PickRing(ti, r);
        c.ring_user_data = r >> 8;
        switch ((r >> 16) % 4) {
          case 0:  // deferred mmap in the churned window (overlaps → error CQE)
            c.ring_op = SysOp::kMmap;
            c.va_range = VaRange{0x100000ull * (ti + 1) + ((r >> 20) % 48) * kPageSize4K,
                                 1, PageSize::k4K};
            c.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
            break;
          case 1:  // deferred munmap over the same window
            c.ring_op = SysOp::kMunmap;
            c.va_range = VaRange{0x100000ull * (ti + 1) + ((r >> 20) % 48) * kPageSize4K,
                                 1, PageSize::k4K};
            break;
          case 2:  // deferred thread churn
            c.ring_op = SysOp::kNewThread;
            break;
          default:  // blocking IPC is not submittable → kInvalid at submit
            c.ring_op = SysOp::kSend;
            c.edpt_idx = 0;
            break;
        }
        return Cmd{ti, c};
      }
      default: {  // drain an owned (or bogus) ring, sometimes budget-capped
        c.op = SysOp::kRingEnter;
        c.ring_id = PickRing(ti, r);
        c.ring_budget = static_cast<std::uint32_t>((r >> 16) % 4);  // 0 = no cap
        return Cmd{ti, c};
      }
    }
  }
}

IommuDomainId TraceGen::PickDomain(std::uint64_t r) const {
  if (domains.empty() || (r >> 8) % 5 == 0) {
    return 9999;  // dangling → kDenied
  }
  return domains[(r >> 8) % domains.size()];
}

std::uint64_t TraceGen::PickRing(int ti, std::uint64_t r) const {
  // Rings are owner-checked, so only this thread's rings are usable;
  // a bogus id (sometimes deliberate, always when none exist) → kInvalid.
  std::vector<std::uint64_t> owned;
  for (const auto& [tidx, id] : rings) {
    if (tidx == ti) {
      owned.push_back(id);
    }
  }
  if (owned.empty() || (r >> 24) % 7 == 0) {
    return 9999;
  }
  return owned[(r >> 24) % owned.size()];
}

void TraceGen::Observe(const Syscall& call, const SyscallRet& ret) {
  if (!ret.ok()) {
    return;
  }
  if (call.op == SysOp::kIommuCreateDomain) {
    domains.push_back(ret.value);
  } else if (call.op == SysOp::kNewContainer) {
    disposable.push_back(ret.value);
  } else if (call.op == SysOp::kKillContainer) {
    std::erase(disposable, call.target);
  } else if (call.op == SysOp::kRingSetup) {
    // Gen records which thread issued the setup; the returned id is only
    // usable from that owner.
    rings.emplace_back(last_thread_, ret.value);
  }
}

}  // namespace atmo
