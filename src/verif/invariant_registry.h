// Invariant registry — the "verification suite" whose runtime stands in for
// the paper's SMT verification time (Table 2, Figure 2).
//
// Every proof obligation of the system — subsystem well-formedness,
// page-table refinement (flat and recursive variants), memory safety, leak
// freedom, per-syscall specs evaluated over a recorded trace — registers
// here as a named check. RunAll evaluates the suite over a kernel state with
// a configurable number of worker threads (checks are read-only and
// independent, like SMT queries per function) and reports per-check timing.

#ifndef ATMO_SRC_VERIF_INVARIANT_REGISTRY_H_
#define ATMO_SRC_VERIF_INVARIANT_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/kernel.h"

namespace atmo {

struct CheckOutcome {
  std::string name;
  bool ok = true;
  std::string detail;
  double seconds = 0.0;
};

struct SuiteReport {
  std::vector<CheckOutcome> outcomes;  // in registration order
  double wall_seconds = 0.0;

  bool AllOk() const;
  // Total single-threaded work (sum of per-check durations).
  double TotalCheckSeconds() const;
};

class InvariantRegistry {
 public:
  using CheckFn = std::function<InvResult(const Kernel&)>;

  // Registers one named check.
  void Register(std::string name, CheckFn check);
  std::size_t size() const { return checks_.size(); }

  // Runs every check against `kernel` using `threads` workers.
  SuiteReport RunAll(const Kernel& kernel, unsigned threads = 1) const;

  // The standard Atmosphere suite: all subsystem invariants + flat
  // page-table refinement + memory safety/leak freedom. `recursive_pt`
  // swaps the page-table checkers for the NrOS-style recursive ones
  // (the Table 2 / §6.2 ablation).
  static InvariantRegistry StandardSuite(bool recursive_pt = false);

 private:
  struct Entry {
    std::string name;
    CheckFn check;
  };
  std::vector<Entry> checks_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VERIF_INVARIANT_REGISTRY_H_
