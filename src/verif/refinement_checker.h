// Refinement checker — the executable analog of Verus's refinement theorem.
//
// Wraps a Kernel and re-proves, after every step, that the concrete
// transition refines the abstract specification:
//
//   1. capture Ψ  = Abstract(kernel)          (abstraction function)
//   2. run the concrete Dispatch / Exec
//   3. capture Ψ' = Abstract(kernel)
//   4. check DispatchSpec / SyscallSpec(Ψ, Ψ', t, call, ret)
//   5. check total_wf(kernel)                  (well-formedness theorem)
//
// A spec or invariant failure is routed through ATMO_CHECK — the same
// channel as permission violations — so tests can assert that deliberately
// broken kernels are caught.

#ifndef ATMO_SRC_VERIF_REFINEMENT_CHECKER_H_
#define ATMO_SRC_VERIF_REFINEMENT_CHECKER_H_

#include <cstdint>

#include "src/core/kernel.h"
#include "src/spec/syscall_specs.h"

namespace atmo {

class RefinementChecker {
 public:
  // `check_wf_every`: total_wf is O(state), so large trace runs may check it
  // every N steps (specs are still checked on every step). 1 = always.
  explicit RefinementChecker(Kernel* kernel, std::uint64_t check_wf_every = 1)
      : kernel_(kernel), check_wf_every_(check_wf_every) {}

  // Runs one kernel step under full refinement checking.
  SyscallRet Step(ThrdPtr t, const Syscall& call);

  std::uint64_t steps_checked() const { return steps_; }
  Kernel* kernel() { return kernel_; }

 private:
  Kernel* kernel_;
  std::uint64_t check_wf_every_;
  std::uint64_t steps_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_VERIF_REFINEMENT_CHECKER_H_
