// Refinement checker — the executable analog of Verus's refinement theorem.
//
// Wraps a Kernel and re-proves, after every step, that the concrete
// transition refines the abstract specification:
//
//   1. capture Ψ  = Abstract(kernel)          (abstraction function)
//   2. run the concrete Dispatch / Exec
//   3. capture Ψ' = Abstract(kernel)
//   4. check DispatchSpec / SyscallSpec(Ψ, Ψ', t, call, ret)
//   5. check total_wf(kernel)                  (well-formedness theorem)
//
// Incremental mode (the default) maintains Ψ across steps: each capture
// patches the cached snapshot at exactly the entries the subsystems logged
// as dirty (Kernel::AbstractDelta), so the per-step cost is O(|dirty|)
// instead of O(machine). Soundness of the dirty logs is defended in depth
// by a periodic audit: every `audit_every` steps the checker recomputes a
// full Abstract() and requires it to equal the incrementally maintained Ψ.
//
// A spec, invariant, or audit failure is routed through ATMO_CHECK — the
// same channel as permission violations — so tests can assert that
// deliberately broken kernels (or corrupted dirty sets) are caught.

#ifndef ATMO_SRC_VERIF_REFINEMENT_CHECKER_H_
#define ATMO_SRC_VERIF_REFINEMENT_CHECKER_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "src/core/kernel.h"
#include "src/spec/syscall_specs.h"
#include "src/vstd/arena.h"

namespace atmo {

// Per-phase cost counters, maintained by every checker regardless of mode.
// All times are wall-clock nanoseconds from std::chrono::steady_clock.
struct CheckStats {
  std::uint64_t steps = 0;
  std::uint64_t abstraction_ns = 0;  // time in Abstract()/AbstractDelta()
  std::uint64_t spec_ns = 0;         // time in DispatchSpec/SyscallSpec
  std::uint64_t wf_ns = 0;           // time in TotalWf()
  std::uint64_t audit_ns = 0;        // time in full-Abstract audit passes
  std::uint64_t wf_checks = 0;       // number of TotalWf() evaluations
  std::uint64_t audit_passes = 0;    // number of audits performed
  std::uint64_t full_abstractions = 0;   // full Abstract() captures
  std::uint64_t delta_abstractions = 0;  // AbstractDelta() captures
  std::uint64_t dirty_entries = 0;       // cumulative drained dirty entries
  std::uint64_t max_dirty_entries = 0;   // largest single drained dirty set
  std::uint64_t batch_drains = 0;        // successful kRingEnter transitions
  std::uint64_t batched_entries = 0;     // inner syscalls covered by them
  // Allocation telemetry (DESIGN.md §14). heap_allocs is the number of
  // ::operator new calls observed inside Step() — the numerator of the
  // allocations-per-checked-step number gated in CI. The arena_* counters
  // mirror the per-checker SpecArena stats (0 when use_arena is off).
  std::uint64_t heap_allocs = 0;
  std::uint64_t arena_allocs = 0;
  std::uint64_t arena_resets = 0;
  std::uint64_t arena_refused_resets = 0;
};

class RefinementChecker {
 public:
  struct Options {
    // total_wf is O(state), so large trace runs may check it every N steps
    // (specs are still checked on every step). 1 = always, 0 = never.
    std::uint64_t check_wf_every = 1;
    // Every N steps, recompute a full Abstract() and require it to equal
    // the incrementally maintained Ψ (defence in depth against a missing
    // dirty mark). 0 = never. Ignored in full-rebuild mode.
    std::uint64_t audit_every = 16;
    // false: rebuild Ψ from scratch at every capture (the pre-optimization
    // behaviour, kept as the differential-testing oracle).
    bool incremental = true;
    // Route the transient Ψ snapshots and spec-check temporaries through a
    // pair of per-checker SpecArenas that ping/pong at audit boundaries
    // (DESIGN.md §14). false = global heap, kept as the measurement
    // baseline for the allocations-per-step gate.
    bool use_arena = true;
    // Bytes preallocated per arena at first Step (two arenas per checker).
    // 0 = grow on demand. SweepHarness sets this so shards never touch the
    // global heap for chunk growth on the hot path.
    std::size_t arena_reserve_bytes = 0;
  };

  RefinementChecker(Kernel* kernel, const Options& options)
      : kernel_(kernel), options_(options) {}
  // Back-compatible constructor: incremental with default audit cadence.
  explicit RefinementChecker(Kernel* kernel, std::uint64_t check_wf_every = 1)
      : RefinementChecker(kernel, Options{.check_wf_every = check_wf_every}) {}

  // Runs one kernel step under full refinement checking.
  SyscallRet Step(ThrdPtr t, const Syscall& call);

  std::uint64_t steps_checked() const { return stats_.steps; }
  const CheckStats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  // The cached Ψ (incremental mode, after at least one Step); tests use it
  // to cross-validate against a full Abstract().
  const AbstractKernel* cached() const { return cached_ ? &*cached_ : nullptr; }
  Kernel* kernel() { return kernel_; }

  // Arena introspection for tests and benches. Null when use_arena is off
  // or before the first Step. The active arena serves the current audit
  // window's captures; the retired one is awaiting its deferred reset.
  const SpecArena* active_arena() const { return arenas_[active_arena_].get(); }
  const SpecArena* retired_arena() const {
    return arenas_[1 - active_arena_].get();
  }

 private:
  // Drains the kernel's dirty logs and produces the current Ψ — by patching
  // the cached snapshot when incremental, by full rebuild otherwise.
  AbstractKernel Capture();
  void EnsureArenas();
  // The arena new allocations should target right now (null = heap).
  const std::shared_ptr<SpecArena>& ActiveArenaRef() const {
    return arenas_[active_arena_];
  }

  Kernel* kernel_;
  Options options_;
  CheckStats stats_;
  std::optional<AbstractKernel> cached_;
  // Ping/pong arena pair (see Step for the flip-and-deferred-reset dance).
  std::shared_ptr<SpecArena> arenas_[2];
  int active_arena_ = 0;
  bool arena_reset_pending_ = false;
};

}  // namespace atmo

#endif  // ATMO_SRC_VERIF_REFINEMENT_CHECKER_H_
