#include "src/verif/refinement_checker.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/op_names.h"
#include "src/spec/frame_profile.h"
#include "src/vstd/check.h"

namespace atmo {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

AbstractKernel RefinementChecker::Capture() {
  // Drain in both modes: the logs are append-only and must not grow without
  // bound across a long full-rebuild run.
  DirtySet dirty = kernel_->DrainDirty();
  std::uint64_t t0 = NowNs();
  AbstractKernel psi;
  if (options_.incremental && cached_ && !dirty.overflow) {
    std::uint64_t entries = dirty.TotalEntries();
    stats_.dirty_entries += entries;
    if (entries > stats_.max_dirty_entries) {
      stats_.max_dirty_entries = entries;
    }
    ++stats_.delta_abstractions;
    ATMO_OBS_SPAN_ARG(obs::kCatCheck, "check.abstract_delta", "dirty_entries", entries);
    psi = kernel_->AbstractDelta(*cached_, dirty);
  } else {
    ++stats_.full_abstractions;
    ATMO_OBS_SPAN(obs::kCatCheck, "check.abstract_full");
    psi = kernel_->Abstract();
  }
  stats_.abstraction_ns += NowNs() - t0;
  return psi;
}

SyscallRet RefinementChecker::Step(ThrdPtr t, const Syscall& call) {
  // Flight-recorder span for the whole checked syscall; the trailing 'E'
  // event carries the error name (or closes bare on a check violation).
  obs::ObsSpan sys_span(obs::kCatSyscall, obs::TraceOpLabel(call.op));
  AbstractKernel pre = Capture();
  cached_ = pre;
  kernel_->Dispatch(t);
  AbstractKernel mid = Capture();
  cached_ = mid;

  std::uint64_t t0 = NowNs();
  SpecResult dispatch = [&] {
    ATMO_OBS_SPAN(obs::kCatCheck, "check.spec");
    return DispatchSpec(pre, mid, t);
  }();
  stats_.spec_ns += NowNs() - t0;
  ATMO_CHECK(dispatch.ok, "dispatch refinement failed: " + dispatch.detail);

  SyscallRet ret = kernel_->Exec(t, call);
  AbstractKernel post = Capture();
  cached_ = std::move(post);

  t0 = NowNs();
  SpecResult spec = [&] {
    ATMO_OBS_SPAN(obs::kCatCheck, "check.spec");
    return SyscallSpec(mid, *cached_, t, call, ret);
  }();
  // The declarative frame-condition table (frame_profile.h) is checked in
  // the same pass: components outside the op's profile must be untouched.
  std::string frame = [&] {
    ATMO_OBS_SPAN(obs::kCatCheck, "check.frame");
    return FrameProfileViolation(mid, *cached_, FrameProfileFor(call.op));
  }();
  stats_.spec_ns += NowNs() - t0;
  ATMO_CHECK(spec.ok, std::string("syscall refinement failed (") + SysOpName(call.op) +
                          ", ret " + SysErrorName(ret.error) + "): " + spec.detail);
  ATMO_CHECK(frame.empty(), std::string("frame profile violated (") + SysOpName(call.op) +
                                ", ret " + SysErrorName(ret.error) +
                                "): out-of-frame component changed: " + frame);

  ++stats_.steps;
  if (call.op == SysOp::kRingEnter && ret.ok()) {
    // One checked transition just covered ret.value inner syscalls — the
    // batch amortization this pair of counters quantifies.
    ++stats_.batch_drains;
    stats_.batched_entries += ret.value;
  }
  if (options_.check_wf_every != 0 && stats_.steps % options_.check_wf_every == 0) {
    t0 = NowNs();
    InvResult wf = [&] {
      ATMO_OBS_SPAN(obs::kCatCheck, "check.wf");
      return kernel_->TotalWf();
    }();
    stats_.wf_ns += NowNs() - t0;
    ++stats_.wf_checks;
    ATMO_CHECK(wf.ok, std::string("total_wf failed after ") + SysOpName(call.op) + ": " +
                          wf.detail);
  }
  if (options_.incremental && options_.audit_every != 0 &&
      stats_.steps % options_.audit_every == 0) {
    t0 = NowNs();
    // No drain here: anything mutated since the post-capture belongs to the
    // next step's delta. The audit recomputes Ψ of the state as the cache
    // sees it and demands bit-for-bit agreement.
    bool agree = [&] {
      ATMO_OBS_SPAN(obs::kCatCheck, "check.audit");
      AbstractKernel full = kernel_->Abstract();
      return full == *cached_;
    }();
    stats_.audit_ns += NowNs() - t0;
    ++stats_.audit_passes;
    ATMO_CHECK(agree, std::string("incremental-abstraction audit failed after ") +
                          SysOpName(call.op) + ": cached Ψ diverged from Abstract()");
  }
  sys_span.SetResult("error", SysErrorName(ret.error));
  return ret;
}

}  // namespace atmo
