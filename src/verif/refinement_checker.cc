#include "src/verif/refinement_checker.h"

#include <chrono>
#include <string>
#include <utility>

#include "src/obs/alloc_hook.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/op_names.h"
#include "src/spec/frame_profile.h"
#include "src/vstd/check.h"
#include "src/vstd/thread_annotations.h"

namespace atmo {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void RefinementChecker::EnsureArenas() {
  if (!options_.use_arena || arenas_[0] != nullptr) {
    return;
  }
  arenas_[0] = std::make_shared<SpecArena>(options_.arena_reserve_bytes);
  arenas_[1] = std::make_shared<SpecArena>(options_.arena_reserve_bytes);
}

AbstractKernel RefinementChecker::Capture() {
  // Drain in both modes: the logs are append-only and must not grow without
  // bound across a long full-rebuild run.
  DirtySet dirty = kernel_->DrainDirty();
  // Reps detached while building Ψ land in the checker's active arena (or
  // the heap when use_arena is off — ArenaScope(nullptr) is the heap).
  ArenaScope arena_scope(ActiveArenaRef());
  std::uint64_t t0 = NowNs();
  AbstractKernel psi;
  if (options_.incremental && cached_ && !dirty.overflow) {
    std::uint64_t entries = dirty.TotalEntries();
    stats_.dirty_entries += entries;
    if (entries > stats_.max_dirty_entries) {
      stats_.max_dirty_entries = entries;
    }
    ++stats_.delta_abstractions;
    ATMO_OBS_SPAN_ARG(obs::kCatCheck, "check.abstract_delta", "dirty_entries", entries);
    psi = kernel_->AbstractDelta(*cached_, dirty);
  } else {
    ++stats_.full_abstractions;
    ATMO_OBS_SPAN(obs::kCatCheck, "check.abstract_full");
    psi = kernel_->Abstract();
  }
  stats_.abstraction_ns += NowNs() - t0;
  return psi;
}

SyscallRet RefinementChecker::Step(ThrdPtr t, const Syscall& call)
    ATMO_HOT_PATH(hot-path-alloc) {
  EnsureArenas();
  if (arena_reset_pending_) {
    // Deferred from the last audit flip: the retired arena's last references
    // were this checker's own pre/mid/post locals, which died when that
    // Step returned — so the reset normally succeeds here. If a snapshot
    // escaped (a test holding Ψ, say) the reset is refused and retried at
    // the next flip; a refused reset only skips recycling, it is never
    // unsafe (src/vstd/arena.h).
    if (arenas_[1 - active_arena_]->Reset()) {
      arena_reset_pending_ = false;
    }
  }
  obs::AllocProbe heap_probe;
  // Flight-recorder span for the whole checked syscall; the trailing 'E'
  // event carries the error name (or closes bare on a check violation).
  obs::ObsSpan sys_span(obs::kCatSyscall, obs::TraceOpLabel(call.op));
  AbstractKernel pre = Capture();
  cached_ = pre;
  kernel_->Dispatch(t);
  AbstractKernel mid = Capture();
  cached_ = mid;

  std::uint64_t t0 = NowNs();
  SpecResult dispatch = [&] {
    ATMO_OBS_SPAN(obs::kCatCheck, "check.spec");
    // Spec checks build transient expected-Ψ values (functional insert /
    // remove copies); those belong in the arena with the snapshots.
    ArenaScope arena_scope(ActiveArenaRef());
    return DispatchSpec(pre, mid, t);
  }();
  stats_.spec_ns += NowNs() - t0;
  ATMO_CHECK(dispatch.ok, "dispatch refinement failed: " + dispatch.detail);

  SyscallRet ret = kernel_->Exec(t, call);
  AbstractKernel post = Capture();
  cached_ = std::move(post);

  t0 = NowNs();
  SpecResult spec = [&] {
    ATMO_OBS_SPAN(obs::kCatCheck, "check.spec");
    ArenaScope arena_scope(ActiveArenaRef());
    return SyscallSpec(mid, *cached_, t, call, ret);
  }();
  // The declarative frame-condition table (frame_profile.h) is checked in
  // the same pass: components outside the op's profile must be untouched.
  std::string frame = [&] {
    ATMO_OBS_SPAN(obs::kCatCheck, "check.frame");
    ArenaScope arena_scope(ActiveArenaRef());
    return FrameProfileViolation(mid, *cached_, FrameProfileFor(call.op));
  }();
  stats_.spec_ns += NowNs() - t0;
  ATMO_CHECK(spec.ok, std::string("syscall refinement failed (") + SysOpName(call.op) +
                          ", ret " + SysErrorName(ret.error) + "): " + spec.detail);
  ATMO_CHECK(frame.empty(), std::string("frame profile violated (") + SysOpName(call.op) +
                                ", ret " + SysErrorName(ret.error) +
                                "): out-of-frame component changed: " + frame);

  ++stats_.steps;
  if (call.op == SysOp::kRingEnter && ret.ok()) {
    // One checked transition just covered ret.value inner syscalls — the
    // batch amortization this pair of counters quantifies.
    ++stats_.batch_drains;
    stats_.batched_entries += ret.value;
  }
  if (options_.check_wf_every != 0 && stats_.steps % options_.check_wf_every == 0) {
    t0 = NowNs();
    InvResult wf = [&] {
      ATMO_OBS_SPAN(obs::kCatCheck, "check.wf");
      // Invariant evaluation builds transient spec views of every
      // subsystem (O(state) map/set temporaries, all dead by the time the
      // InvResult returns) — the largest per-step allocation source after
      // the snapshots themselves, so it belongs in the arena too.
      ArenaScope arena_scope(ActiveArenaRef());
      return kernel_->TotalWf();
    }();
    stats_.wf_ns += NowNs() - t0;
    ++stats_.wf_checks;
    ATMO_CHECK(wf.ok, std::string("total_wf failed after ") + SysOpName(call.op) + ": " +
                          wf.detail);
  }
  if (options_.incremental && options_.audit_every != 0 &&
      stats_.steps % options_.audit_every == 0) {
    t0 = NowNs();
    // No drain here: anything mutated since the post-capture belongs to the
    // next step's delta. The audit recomputes Ψ of the state as the cache
    // sees it and demands bit-for-bit agreement.
    bool agree = [&] {
      ATMO_OBS_SPAN(obs::kCatCheck, "check.audit");
      // The full rebuild happens in the PARTNER arena. On agreement the
      // rebuilt Ψ replaces cached_, so nothing durable references the
      // active arena any more; the roles flip and the old arena is reset
      // at the start of the next Step (this step's locals still hold reps
      // in it). This is the audit-aligned recycle point of DESIGN.md §14.
      const int partner = 1 - active_arena_;
      ArenaScope arena_scope(arenas_[partner]);
      AbstractKernel full = kernel_->Abstract();
      bool equal = full == *cached_;
      if (equal && arenas_[partner] != nullptr) {
        cached_ = std::move(full);
        active_arena_ = partner;
        arena_reset_pending_ = true;
      }
      return equal;
    }();
    stats_.audit_ns += NowNs() - t0;
    ++stats_.audit_passes;
    ATMO_CHECK(agree, std::string("incremental-abstraction audit failed after ") +
                          SysOpName(call.op) + ": cached Ψ diverged from Abstract()");
  }
  stats_.heap_allocs += heap_probe.allocs();
  if (arenas_[0] != nullptr) {
    stats_.arena_allocs = arenas_[0]->stats().allocs + arenas_[1]->stats().allocs;
    stats_.arena_resets = arenas_[0]->stats().resets + arenas_[1]->stats().resets;
    stats_.arena_refused_resets =
        arenas_[0]->stats().refused_resets + arenas_[1]->stats().refused_resets;
  }
  sys_span.SetResult("error", SysErrorName(ret.error));
  return ret;
}

}  // namespace atmo
