#include "src/verif/refinement_checker.h"

#include <string>

#include "src/vstd/check.h"

namespace atmo {

SyscallRet RefinementChecker::Step(ThrdPtr t, const Syscall& call) {
  AbstractKernel pre = kernel_->Abstract();
  kernel_->Dispatch(t);
  AbstractKernel mid = kernel_->Abstract();

  SpecResult dispatch = DispatchSpec(pre, mid, t);
  ATMO_CHECK(dispatch.ok, "dispatch refinement failed: " + dispatch.detail);

  SyscallRet ret = kernel_->Exec(t, call);
  AbstractKernel post = kernel_->Abstract();

  SpecResult spec = SyscallSpec(mid, post, t, call, ret);
  ATMO_CHECK(spec.ok, std::string("syscall refinement failed (") + SysOpName(call.op) +
                          ", ret " + SysErrorName(ret.error) + "): " + spec.detail);

  ++steps_;
  if (check_wf_every_ != 0 && steps_ % check_wf_every_ == 0) {
    InvResult wf = kernel_->TotalWf();
    ATMO_CHECK(wf.ok, std::string("total_wf failed after ") + SysOpName(call.op) + ": " +
                          wf.detail);
  }
  return ret;
}

}  // namespace atmo
