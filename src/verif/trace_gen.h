// Reusable randomized syscall-trace generation — the workload side of the
// runtime verification harness.
//
// Extracted from the incremental-refinement differential test so that every
// consumer of long randomized traces (the differential test, the parallel
// sweep harness, the benches) drives the *same* deterministic generator
// instead of keeping private xorshift copies. A trace is a pure function of
// its seed and of the kernel state it is generated against: same seed on a
// freshly booted TraceFixture ⇒ bit-identical command sequence, which is
// what makes sharded exploration replayable.
//
// TraceGen mixes successful calls with error-returning ones (unaligned or
// overlapping maps, dangling IOMMU domains, occupied descriptor slots,
// over-quota creations) and with blocking IPC rendezvous that it completes
// from a runnable peer, so at most one thread is ever blocked.

#ifndef ATMO_SRC_VERIF_TRACE_GEN_H_
#define ATMO_SRC_VERIF_TRACE_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/core/kernel.h"
#include "src/core/syscall_ring.h"

namespace atmo {

// Minimal xorshift64 PRNG. State must be nonzero.
struct Xorshift {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;

  std::uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// One round of the splitmix64 output function: the i-th value of the stream
// seeded by `x` is SplitMix64(x + i * kSplitMix64Gamma). Used to derive
// statistically independent per-shard seeds from one master seed.
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9e3779b97f4a7c15ull;

inline std::uint64_t SplitMix64(std::uint64_t x) {
  x += kSplitMix64Gamma;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Boots a kernel with two processes / three threads; SetupIpcAndDma then
// binds an IPC endpoint on both sides and maps one DMA-donor page per
// thread (outside the mmap window the generator churns).
struct TraceFixture {
  static constexpr int kThreads = 3;
  static constexpr VAddr kDmaVaBase = 0x40000000;  // never munmapped
  // Destination window for grant-mode traces (TraceGen::grant_ops):
  // borrow/move grants land here, disjoint from the churned mmap window
  // and the DMA donors so classic munmaps never revoke a loan by accident.
  static constexpr VAddr kGrantVaBase = 0x300000000ull;

  Kernel kernel;
  CtnrPtr ctnr = kNullPtr;
  ProcPtr procs[2] = {kNullPtr, kNullPtr};
  ThrdPtr thrds[kThreads] = {kNullPtr, kNullPtr, kNullPtr};

  static TraceFixture Boot();

  explicit TraceFixture(Kernel k) : kernel(std::move(k)) {}

  // Endpoint slot 0 bound between thrds[0]'s and thrds[2]'s processes plus
  // the per-thread DMA pages. Separate from Boot so tests can interleave a
  // checker construction in between (the setup is then an *external*
  // mutation the dirty logs must absorb).
  void SetupIpcAndDma();

  bool Dispatchable(ThrdPtr t) const;
};

// Generates the i-th syscall of the deterministic trace.
struct TraceGen {
  struct Cmd {
    int thread_idx;
    Syscall call;
  };

  explicit TraceGen(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : rng{seed} {}

  // Next command, given the current fixture state (blocked threads are
  // woken by generating the rendezvous complement from a runnable peer).
  Cmd Gen(const TraceFixture& f);

  // Feed results back so later commands can reference created objects.
  void Observe(const Syscall& call, const SyscallRet& ret);

  Xorshift rng;
  // Mix syscall-ring ops (setup/submit/enter) into the trace. Off by
  // default: the classic 16-way op distribution must stay bit-identical so
  // the sweep goldens and the incremental-refinement differential traces
  // keep their exact historical byte sequences. Ring-aware consumers
  // (SweepHarness::Options::ring_ops, tests/syscall_ring_test.cc) opt in,
  // which widens the distribution to 19 ways.
  bool ring_ops = false;
  // Mix zero-copy page-grant ops into the trace: sends carrying
  // borrow/move grants from the churned mmap window into the grant
  // window, plus kGrantReturn over both windows (mixed validity). Off by
  // default for the same golden-stability reason as ring_ops; widens the
  // distribution by 2 more ways. Composes with ring_ops.
  bool grant_ops = false;
  // Mix kObsQuery introspection calls into the trace: destinations cycle
  // through the churned mmap window (hit-or-miss, read-only slots give
  // kDenied), the DMA donors, the grant window and unmapped holes, so the
  // sweep exercises every error edge of ObsQuerySpec. Off by default for
  // the same golden-stability reason; widens the distribution by 1 way.
  // Composes with ring_ops and grant_ops.
  bool obs_ops = false;
  std::vector<IommuDomainId> domains;
  std::vector<std::uint64_t> disposable;  // child containers to kill later
  // (owner thread idx, ring id) for every ring this trace created; submit
  // and enter commands target these (or a bogus id for kInvalid coverage).
  std::vector<std::pair<int, std::uint64_t>> rings;

 private:
  IommuDomainId PickDomain(std::uint64_t r) const;
  std::uint64_t PickRing(int ti, std::uint64_t r) const;

  int last_thread_ = 0;  // thread idx of the last generated command
};

}  // namespace atmo

#endif  // ATMO_SRC_VERIF_TRACE_GEN_H_
