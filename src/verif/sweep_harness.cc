#include "src/verif/sweep_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <thread>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/verif/obs_export.h"
#include "src/vstd/check.h"

namespace atmo {

namespace {

// Summed counters; max_dirty_entries is the max over shards.
void MergeStats(CheckStats* into, const CheckStats& from) {
  into->steps += from.steps;
  into->abstraction_ns += from.abstraction_ns;
  into->spec_ns += from.spec_ns;
  into->wf_ns += from.wf_ns;
  into->audit_ns += from.audit_ns;
  into->wf_checks += from.wf_checks;
  into->audit_passes += from.audit_passes;
  into->full_abstractions += from.full_abstractions;
  into->delta_abstractions += from.delta_abstractions;
  into->dirty_entries += from.dirty_entries;
  into->max_dirty_entries = std::max(into->max_dirty_entries, from.max_dirty_entries);
  into->batch_drains += from.batch_drains;
  into->batched_entries += from.batched_entries;
  into->heap_allocs += from.heap_allocs;
  into->arena_allocs += from.arena_allocs;
  into->arena_resets += from.arena_resets;
  into->arena_refused_resets += from.arena_refused_resets;
}

}  // namespace

void CoverageMatrix::Merge(const CoverageMatrix& other) {
  // Saturating add: a cell pinned at UINT64_MAX stays there instead of
  // wrapping (merging reports from absurdly long campaigns must not make
  // coverage counts go backwards).
  for (std::size_t op = 0; op < kSysOpCount; ++op) {
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      std::uint64_t& cell = counts[op][err];
      std::uint64_t add = other.counts[op][err];
      cell = add > ~cell ? ~std::uint64_t{0} : cell + add;
    }
  }
}

std::uint64_t CoverageMatrix::Total() const {
  std::uint64_t total = 0;
  for (std::size_t op = 0; op < kSysOpCount; ++op) {
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      std::uint64_t add = counts[op][err];
      total = add > ~total ? ~std::uint64_t{0} : total + add;
    }
  }
  return total;
}

std::uint64_t CoverageMatrix::NonZeroCells() const {
  std::uint64_t cells = 0;
  for (std::size_t op = 0; op < kSysOpCount; ++op) {
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      cells += counts[op][err] != 0 ? 1 : 0;
    }
  }
  return cells;
}

void SweepProgress::RecordShard(const ShardResult& result) {
  MutexLock lock(&mu_);
  ++shards_completed_;
  steps_completed_ += result.steps;
  if (!result.ok) {
    ++shards_failed_;
    if (result.token && (!first_failure_ || result.token->shard < first_failure_->shard)) {
      first_failure_ = result.token;
    }
  }
}

SweepProgress::Snapshot SweepProgress::TakeSnapshot() const {
  MutexLock lock(&mu_);
  Snapshot snap;
  snap.shards_completed = shards_completed_;
  snap.shards_failed = shards_failed_;
  snap.steps_completed = steps_completed_;
  snap.first_failure = first_failure_;
  return snap;
}

bool SweepReport::AllOk() const {
  for (const ShardResult& shard : shards) {
    if (!shard.ok) {
      return false;
    }
  }
  return true;
}

std::vector<ReplayToken> SweepReport::Failures() const {
  std::vector<ReplayToken> tokens;
  for (const ShardResult& shard : shards) {
    if (shard.token) {
      tokens.push_back(*shard.token);
    }
  }
  return tokens;
}

bool SweepReport::SameOutcome(const SweepReport& other) const {
  if (!(coverage == other.coverage) || total_steps != other.total_steps ||
      shards.size() != other.shards.size()) {
    return false;
  }
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ShardResult& a = shards[i];
    const ShardResult& b = other.shards[i];
    if (a.seed != b.seed || a.steps != b.steps || a.ok != b.ok ||
        a.token != b.token || !(a.coverage == b.coverage)) {
      return false;
    }
  }
  return true;
}

std::uint64_t SweepHarness::ShardSeed(std::uint64_t master_seed, std::uint64_t shard) {
  // The (shard+1)-th value of the splitmix64 stream seeded by master_seed;
  // +1 keeps shard 0 from degenerating to SplitMix64(master_seed + 0).
  std::uint64_t seed = SplitMix64(master_seed + shard * kSplitMix64Gamma);
  return seed != 0 ? seed : kSplitMix64Gamma;  // xorshift state must be nonzero
}

ShardResult SweepHarness::RunShard(std::uint64_t shard, bool force_trace) const {
  ShardResult result;
  result.shard = shard;
  result.seed = ShardSeed(options_.master_seed, shard);

  // Per-shard flight recorder: virtual clock (timestamps count recorded
  // events, not wall time) so a traced sweep stays bit-identical across
  // worker counts; tid = shard index gives each shard its own Perfetto
  // track. The recorder is installed only on this thread for the duration
  // of the shard, so shards never share one.
  const bool traced = force_trace || options_.trace || obs::Enabled();
  std::optional<obs::FlightRecorder> recorder;
  std::optional<obs::ScopedThreadRecorder> install;
  if (traced) {
    recorder.emplace(options_.trace_capacity, obs::ClockMode::kVirtual,
                     static_cast<std::uint32_t>(shard));
    install.emplace(&*recorder);
  }
  ATMO_OBS_INSTANT_ARG(obs::kCatSweep, "shard.start", "seed", result.seed);

  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, options_.checker);
  f.SetupIpcAndDma();
  TraceGen gen(result.seed);
  gen.ring_ops = options_.ring_ops;
  gen.grant_ops = options_.grant_ops;
  gen.obs_ops = options_.obs_ops;

  std::uint64_t step = 0;
  try {
    for (; step < options_.steps_per_shard; ++step) {
      if (options_.fault_hook) {
        options_.fault_hook(&f, shard, step);
      }
      TraceGen::Cmd cmd = gen.Gen(f);
      SyscallRet ret = checker.Step(f.thrds[cmd.thread_idx], cmd.call);
      result.coverage.Record(cmd.call.op, ret.error);
      gen.Observe(cmd.call, ret);
      // Drain pending inbound payloads so rendezvous can repeat.
      if (ret.ok() && (cmd.call.op == SysOp::kSend || cmd.call.op == SysOp::kRecv)) {
        for (int ti = 0; ti < TraceFixture::kThreads; ++ti) {
          if (f.kernel.HasInbound(f.thrds[ti])) {
            f.kernel.TakeInbound(f.thrds[ti]);
          }
        }
      }
    }
  } catch (const CheckViolation& violation) {
    // The kernel may be arbitrarily inconsistent after a failed obligation:
    // stop this shard and hand back the coordinates of the failing step.
    result.ok = false;
    result.failure = violation.what();
    result.token = ReplayToken{options_.master_seed, shard, step};
  }
  result.steps = checker.steps_checked();
  result.stats = checker.stats();
  ATMO_OBS_INSTANT_ARG(obs::kCatSweep, "shard.finish", "steps", result.steps);
  if (recorder) {
    result.trace = recorder->Snapshot();
  }
  return result;
}

void SweepHarness::MaybeDumpForensics(const ShardResult& result) const {
  if (result.ok || result.trace.empty()) {
    return;
  }
  const char* dir = std::getenv("ATMO_OBS_DUMP_DIR");
  if (dir == nullptr || dir[0] == '\0') {
    return;
  }
  std::string path = std::string(dir) + "/sweep_failure_shard" +
                     std::to_string(result.shard) + ".json";
  WriteSweepFailureForensics(result, options_.forensics_tail, path);
}

SweepReport SweepHarness::Run() const {
  SweepReport report;
  report.shards.resize(options_.shards);
  report.workers = static_cast<unsigned>(
      std::min<std::uint64_t>(std::max(options_.workers, 1u), std::max<std::uint64_t>(options_.shards, 1)));

  auto wall_start = std::chrono::steady_clock::now();

  // Check violations must throw (not abort) so a failing shard is contained
  // to its worker. Installed once, before any worker exists, and restored
  // after the last join — the handler itself is never touched concurrently.
  ScopedThrowOnCheckFailure throw_guard;

  // Internal progress tracker (mutex-guarded, see thread_annotations.h);
  // first_failure in the report is derived from it after the join.
  SweepProgress progress;
  std::atomic<std::uint64_t> next{0};
  auto worker = [&] {
    for (;;) {
      std::uint64_t shard = next.fetch_add(1);
      if (shard >= options_.shards) {
        return;
      }
      // Queue wait = sweep start -> claim; both timing fields live outside
      // the deterministic portion of the report (SameOutcome ignores them).
      auto claimed = std::chrono::steady_clock::now();
      report.shards[shard] = RunShard(shard, /*force_trace=*/false);
      auto finished = std::chrono::steady_clock::now();
      report.shards[shard].queue_wait_seconds =
          std::chrono::duration<double>(claimed - wall_start).count();
      report.shards[shard].wall_seconds =
          std::chrono::duration<double>(finished - claimed).count();
      progress.RecordShard(report.shards[shard]);
      if (options_.progress != nullptr) {
        options_.progress->RecordShard(report.shards[shard]);
      }
    }
  };

  if (report.workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(report.workers);
    for (unsigned i = 0; i < report.workers; ++i) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  // Merge in shard order: independent of which worker ran which shard.
  for (const ShardResult& shard : report.shards) {
    report.coverage.Merge(shard.coverage);
    MergeStats(&report.stats, shard.stats);
    report.total_steps += shard.steps;
  }
  // Failure forensics: every failing traced shard dumps its trace tail +
  // replay token when ATMO_OBS_DUMP_DIR points somewhere.
  for (const ShardResult& shard : report.shards) {
    MaybeDumpForensics(shard);
  }
  report.first_failure = progress.TakeSnapshot().first_failure;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  report.steps_per_sec =
      report.wall_seconds > 0.0 ? static_cast<double>(report.total_steps) / report.wall_seconds
                                : 0.0;
  return report;
}

ShardResult SweepHarness::Replay(const ReplayToken& token) const {
  ATMO_CHECK(token.master_seed == options_.master_seed,
             "replay token was minted by a sweep with a different master seed");
  ATMO_CHECK(token.shard < options_.shards, "replay token shard out of range");
  ScopedThrowOnCheckFailure throw_guard;
  // Tracing is forced so the reproduced failure ships with its trace even
  // when the original sweep ran untraced.
  ShardResult result = RunShard(token.shard, /*force_trace=*/true);
  MaybeDumpForensics(result);
  return result;
}

}  // namespace atmo
