// IOMMU management (§3, §5 item 8).
//
// Devices DMA into physical memory through an I/O MMU. Each protection
// domain owns a second-level translation table (structurally identical to a
// CPU page table, so the PageTable subsystem is reused — as Intel VT-d
// second-level tables reuse the paging format). Devices attach to at most
// one domain; device accesses outside the domain's mappings fault instead of
// reaching memory, which is what lets Atmosphere distrust devices (§5).
//
// Domains are owned by containers and charged against their quota; an IOMMU
// identifier can be delegated over IPC (IommuGrant).

#ifndef ATMO_SRC_IOMMU_IOMMU_MANAGER_H_
#define ATMO_SRC_IOMMU_IOMMU_MANAGER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/hw/mmu.h"
#include "src/hw/phys_mem.h"
#include "src/pagetable/page_table.h"
#include "src/pmem/page_allocator.h"
#include "src/vstd/dirty_set.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

using DeviceId = std::uint32_t;
using IommuDomainId = std::uint64_t;

inline constexpr IommuDomainId kNoIommuDomain = 0;

class IommuManager {
 public:
  explicit IommuManager(PhysMem* mem) : mem_(mem), mmu_(mem) {}

  IommuManager(IommuManager&&) noexcept = default;
  IommuManager& operator=(IommuManager&&) noexcept = default;

  // Creates a protection domain owned by `ctnr`. Returns kNoIommuDomain on
  // OOM. The domain's root table page is charged to the container by the
  // caller (the kernel facade owns quota accounting).
  IommuDomainId CreateDomain(PageAllocator* alloc, CtnrPtr ctnr);

  // Destroys an empty domain (no attached devices); unmaps everything and
  // frees the table pages.
  void DestroyDomain(PageAllocator* alloc, IommuDomainId domain);

  bool DomainExists(IommuDomainId domain) const { return domain_index_.count(domain) != 0; }
  CtnrPtr DomainOwner(IommuDomainId domain) const;
  // Re-attributes a domain (container kill harvesting / IPC delegation).
  void SetDomainOwner(IommuDomainId domain, CtnrPtr ctnr);

  // Device attachment: a device translates through exactly one domain.
  bool AttachDevice(IommuDomainId domain, DeviceId device);
  void DetachDevice(DeviceId device);
  IommuDomainId DomainOf(DeviceId device) const;

  // DMA mappings (device-visible IOVA -> physical).
  MapError MapDma(PageAllocator* alloc, IommuDomainId domain, VAddr iova, PAddr pa,
                  PageSize size, MapEntryPerm perm);
  std::optional<MapEntry> UnmapDma(IommuDomainId domain, VAddr iova);

  // Hardware-path translation used by device models: resolves `iova` for
  // `device`, honouring write protection. nullopt = DMA fault (blocked).
  std::optional<PAddr> Translate(DeviceId device, VAddr iova, bool write) const;

  // Number of table pages the domain consumes (for quota accounting).
  std::uint64_t DomainPageCount(IommuDomainId domain) const;
  // Pages used by all domain tables (page_closure of this subsystem).
  SpecSet<PagePtr> PageClosure() const;
  // Domains owned by a given container.
  SpecSet<IommuDomainId> DomainsOwnedBy(CtnrPtr ctnr) const;

  // Structural well-formedness: domain tables are wf, device attachments
  // reference live domains.
  bool Wf() const;

  // Drains the set of domains whose abstract view (owner, mappings or
  // attached devices) may have changed since the last drain.
  void DrainDirtyInto(std::set<IommuDomainId>* out, bool* overflow) {
    dirty_.DrainInto(out, overflow);
  }

  const std::map<IommuDomainId, PageTable>& domains() const { return domains_; }
  const std::map<DeviceId, IommuDomainId>& device_attachments() const {
    return device_domains_;
  }
  // Pages of one domain's translation table (for ownership transfer).
  SpecSet<PagePtr> DomainPageClosure(IommuDomainId domain) const;
  // Dry-run / cost hooks mirroring PageTable for quota pre-charging.
  MapError CanMapDma(IommuDomainId domain, VAddr iova, PageSize size) const;
  std::uint64_t FreshNodesForDma(IommuDomainId domain, VAddr iova, PageSize size) const;

  IommuManager CloneForVerification(PhysMem* mem) const;
  // Pooled clone: overwrite `out` in place, reusing its domain map nodes,
  // per-table storage, and index buckets (DESIGN.md §14).
  void CloneForVerificationInto(IommuManager* out, PhysMem* mem) const;

 private:
  // Hashed-index lookups used by every DMA syscall; nullptr when absent.
  PageTable* FindDomain(IommuDomainId domain);
  const PageTable* FindDomain(IommuDomainId domain) const;

  PhysMem* mem_;
  Mmu mmu_;
  IommuDomainId next_domain_ = 1;
  std::map<IommuDomainId, PageTable> domains_;
  // Hashed domain -> table index, maintained in lockstep with domains_ by
  // CreateDomain/DestroyDomain (its only mutation points). std::map nodes
  // are pointer-stable, so the raw pointers stay valid until the entry is
  // erased. Wf() cross-checks index vs domains_.
  std::unordered_map<IommuDomainId, PageTable*> domain_index_;
  std::map<DeviceId, IommuDomainId> device_domains_;
  // Ownership re-attribution after container kills / delegation; overrides
  // the creating table's owner tag. Hashed — only ever probed by domain id.
  std::unordered_map<IommuDomainId, CtnrPtr> owner_overrides_;
  DirtyLog dirty_;
};

}  // namespace atmo

#endif  // ATMO_SRC_IOMMU_IOMMU_MANAGER_H_
