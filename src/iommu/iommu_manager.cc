#include "src/iommu/iommu_manager.h"

#include <utility>
#include <vector>

#include "src/vstd/check.h"

namespace atmo {

IommuDomainId IommuManager::CreateDomain(PageAllocator* alloc, CtnrPtr ctnr) {
  std::optional<PageTable> table = PageTable::New(mem_, alloc, ctnr);
  if (!table.has_value()) {
    return kNoIommuDomain;
  }
  IommuDomainId id = next_domain_++;
  domains_.emplace(id, std::move(*table));
  dirty_.Mark(id);
  return id;
}

void IommuManager::DestroyDomain(PageAllocator* alloc, IommuDomainId domain) {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "DestroyDomain of unknown domain");
  for (const auto& [device, dom] : device_domains_) {
    ATMO_CHECK(dom != domain, "DestroyDomain with attached devices");
  }
  // Unmap all DMA windows, then release the tables.
  std::vector<VAddr> iovas;
  for (const auto& [iova, entry] : it->second.AddressSpace()) {
    iovas.push_back(iova);
  }
  for (VAddr iova : iovas) {
    it->second.Unmap(iova);
  }
  it->second.Destroy(alloc);
  domains_.erase(it);
  owner_overrides_.erase(domain);
  dirty_.Mark(domain);
}

CtnrPtr IommuManager::DomainOwner(IommuDomainId domain) const {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "DomainOwner of unknown domain");
  auto ov = owner_overrides_.find(domain);
  return ov != owner_overrides_.end() ? ov->second : it->second.owner();
}

void IommuManager::SetDomainOwner(IommuDomainId domain, CtnrPtr ctnr) {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "SetDomainOwner of unknown domain");
  // PageTable keeps its owner immutable; rebuild ownership by re-tagging
  // node pages at the allocator and replacing the table's owner via clone is
  // overkill — the table owner field is advisory; quota attribution is the
  // kernel's. We track the override here.
  owner_overrides_[domain] = ctnr;
  dirty_.Mark(domain);
}

bool IommuManager::AttachDevice(IommuDomainId domain, DeviceId device) {
  if (domains_.find(domain) == domains_.end()) {
    return false;
  }
  if (device_domains_.count(device) != 0) {
    return false;  // already attached elsewhere
  }
  device_domains_[device] = domain;
  dirty_.Mark(domain);
  return true;
}

void IommuManager::DetachDevice(DeviceId device) {
  auto it = device_domains_.find(device);
  ATMO_CHECK(it != device_domains_.end(), "DetachDevice of unattached device");
  dirty_.Mark(it->second);
  device_domains_.erase(it);
}

IommuDomainId IommuManager::DomainOf(DeviceId device) const {
  auto it = device_domains_.find(device);
  return it == device_domains_.end() ? kNoIommuDomain : it->second;
}

MapError IommuManager::MapDma(PageAllocator* alloc, IommuDomainId domain, VAddr iova, PAddr pa,
                              PageSize size, MapEntryPerm perm) {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return MapError::kNotMapped;
  }
  dirty_.Mark(domain);
  return it->second.Map(alloc, iova, pa, size, perm);
}

std::optional<MapEntry> IommuManager::UnmapDma(IommuDomainId domain, VAddr iova) {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "UnmapDma on unknown domain");
  dirty_.Mark(domain);
  return it->second.Unmap(iova);
}

std::optional<PAddr> IommuManager::Translate(DeviceId device, VAddr iova, bool write) const {
  auto dev = device_domains_.find(device);
  if (dev == device_domains_.end()) {
    return std::nullopt;  // unattached devices are blocked entirely
  }
  auto dom = domains_.find(dev->second);
  ATMO_CHECK(dom != domains_.end(), "device attached to dead domain");
  // Hardware path: walk the real table bits.
  std::optional<WalkResult> walk = mmu_.Walk(dom->second.cr3(), iova);
  if (!walk.has_value()) {
    return std::nullopt;
  }
  if (write && !walk->perm.writable) {
    return std::nullopt;
  }
  return walk->paddr;
}

std::uint64_t IommuManager::DomainPageCount(IommuDomainId domain) const {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "DomainPageCount of unknown domain");
  return it->second.PageClosure().size();
}

SpecSet<PagePtr> IommuManager::PageClosure() const {
  SpecSet<PagePtr> out;
  for (const auto& [id, table] : domains_) {
    out = out.Union(table.PageClosure());
  }
  return out;
}

SpecSet<IommuDomainId> IommuManager::DomainsOwnedBy(CtnrPtr ctnr) const {
  SpecSet<IommuDomainId> out;
  for (const auto& [id, table] : domains_) {
    auto ov = owner_overrides_.find(id);
    CtnrPtr owner = ov != owner_overrides_.end() ? ov->second : table.owner();
    if (owner == ctnr) {
      out.add(id);
    }
  }
  return out;
}

SpecSet<PagePtr> IommuManager::DomainPageClosure(IommuDomainId domain) const {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "DomainPageClosure of unknown domain");
  return it->second.PageClosure();
}

MapError IommuManager::CanMapDma(IommuDomainId domain, VAddr iova, PageSize size) const {
  auto it = domains_.find(domain);
  if (it == domains_.end()) {
    return MapError::kNotMapped;
  }
  return it->second.CanMap(iova, size);
}

std::uint64_t IommuManager::FreshNodesForDma(IommuDomainId domain, VAddr iova,
                                             PageSize size) const {
  auto it = domains_.find(domain);
  ATMO_CHECK(it != domains_.end(), "FreshNodesForDma of unknown domain");
  return it->second.FreshNodesFor(iova, size, nullptr);
}

bool IommuManager::Wf() const {
  for (const auto& [id, table] : domains_) {
    if (!table.StructureWf(*mem_)) {
      return false;
    }
  }
  for (const auto& [device, domain] : device_domains_) {
    if (domains_.find(domain) == domains_.end()) {
      return false;
    }
  }
  return true;
}

IommuManager IommuManager::CloneForVerification(PhysMem* mem) const {
  IommuManager out(mem);
  out.next_domain_ = next_domain_;
  for (const auto& [id, table] : domains_) {
    out.domains_.emplace(id, table.CloneForVerification(mem));
  }
  out.device_domains_ = device_domains_;
  out.owner_overrides_ = owner_overrides_;
  return out;
}

}  // namespace atmo
