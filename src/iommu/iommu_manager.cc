#include "src/iommu/iommu_manager.h"

#include <utility>
#include <vector>

#include "src/vstd/check.h"

namespace atmo {

PageTable* IommuManager::FindDomain(IommuDomainId domain) {
  auto it = domain_index_.find(domain);
  return it == domain_index_.end() ? nullptr : it->second;
}

const PageTable* IommuManager::FindDomain(IommuDomainId domain) const {
  auto it = domain_index_.find(domain);
  return it == domain_index_.end() ? nullptr : it->second;
}

IommuDomainId IommuManager::CreateDomain(PageAllocator* alloc, CtnrPtr ctnr) {
  std::optional<PageTable> table = PageTable::New(mem_, alloc, ctnr);
  if (!table.has_value()) {
    return kNoIommuDomain;
  }
  IommuDomainId id = next_domain_++;
  // averif-lint: allow(hot-path-alloc) — IOMMU domain creation is a cold control-plane op
  auto [it, inserted] = domains_.emplace(id, std::move(*table));
  ATMO_CHECK(inserted, "domains_ and domain_index_ out of lockstep");
  // averif-lint: allow(hot-path-alloc) — IOMMU domain creation is a cold control-plane op
  domain_index_.emplace(id, &it->second);
  dirty_.Mark(id);
  return id;
}

void IommuManager::DestroyDomain(PageAllocator* alloc, IommuDomainId domain) {
  PageTable* table = FindDomain(domain);
  ATMO_CHECK(table != nullptr, "DestroyDomain of unknown domain");
  for (const auto& [device, dom] : device_domains_) {
    ATMO_CHECK(dom != domain, "DestroyDomain with attached devices");
  }
  // Unmap all DMA windows, then release the tables.
  std::vector<VAddr> iovas;
  for (const auto& [iova, entry] : table->AddressSpace()) {
    iovas.push_back(iova);
  }
  for (VAddr iova : iovas) {
    table->Unmap(iova);
  }
  table->Destroy(alloc);
  domain_index_.erase(domain);
  domains_.erase(domain);
  owner_overrides_.erase(domain);
  dirty_.Mark(domain);
}

CtnrPtr IommuManager::DomainOwner(IommuDomainId domain) const {
  const PageTable* table = FindDomain(domain);
  ATMO_CHECK(table != nullptr, "DomainOwner of unknown domain");
  auto ov = owner_overrides_.find(domain);
  return ov != owner_overrides_.end() ? ov->second : table->owner();
}

void IommuManager::SetDomainOwner(IommuDomainId domain, CtnrPtr ctnr) {
  ATMO_CHECK(FindDomain(domain) != nullptr, "SetDomainOwner of unknown domain");
  // PageTable keeps its owner immutable; rebuild ownership by re-tagging
  // node pages at the allocator and replacing the table's owner via clone is
  // overkill — the table owner field is advisory; quota attribution is the
  // kernel's. We track the override here.
  owner_overrides_[domain] = ctnr;
  dirty_.Mark(domain);
}

bool IommuManager::AttachDevice(IommuDomainId domain, DeviceId device) {
  if (FindDomain(domain) == nullptr) {
    return false;
  }
  if (device_domains_.count(device) != 0) {
    return false;  // already attached elsewhere
  }
  device_domains_[device] = domain;
  dirty_.Mark(domain);
  return true;
}

void IommuManager::DetachDevice(DeviceId device) {
  auto it = device_domains_.find(device);
  ATMO_CHECK(it != device_domains_.end(), "DetachDevice of unattached device");
  dirty_.Mark(it->second);
  device_domains_.erase(it);
}

IommuDomainId IommuManager::DomainOf(DeviceId device) const {
  auto it = device_domains_.find(device);
  return it == device_domains_.end() ? kNoIommuDomain : it->second;
}

MapError IommuManager::MapDma(PageAllocator* alloc, IommuDomainId domain, VAddr iova, PAddr pa,
                              PageSize size, MapEntryPerm perm) {
  PageTable* table = FindDomain(domain);
  if (table == nullptr) {
    return MapError::kNotMapped;
  }
  dirty_.Mark(domain);
  return table->Map(alloc, iova, pa, size, perm);
}

std::optional<MapEntry> IommuManager::UnmapDma(IommuDomainId domain, VAddr iova) {
  PageTable* table = FindDomain(domain);
  ATMO_CHECK(table != nullptr, "UnmapDma on unknown domain");
  dirty_.Mark(domain);
  return table->Unmap(iova);
}

std::optional<PAddr> IommuManager::Translate(DeviceId device, VAddr iova, bool write) const {
  auto dev = device_domains_.find(device);
  if (dev == device_domains_.end()) {
    return std::nullopt;  // unattached devices are blocked entirely
  }
  const PageTable* dom = FindDomain(dev->second);
  ATMO_CHECK(dom != nullptr, "device attached to dead domain");
  // Hardware path: walk the real table bits.
  std::optional<WalkResult> walk = mmu_.Walk(dom->cr3(), iova);
  if (!walk.has_value()) {
    return std::nullopt;
  }
  if (write && !walk->perm.writable) {
    return std::nullopt;
  }
  return walk->paddr;
}

std::uint64_t IommuManager::DomainPageCount(IommuDomainId domain) const {
  const PageTable* table = FindDomain(domain);
  ATMO_CHECK(table != nullptr, "DomainPageCount of unknown domain");
  return table->PageClosure().size();
}

SpecSet<PagePtr> IommuManager::PageClosure() const {
  SpecSet<PagePtr> out;
  for (const auto& [id, table] : domains_) {
    out = out.Union(table.PageClosure());
  }
  return out;
}

SpecSet<IommuDomainId> IommuManager::DomainsOwnedBy(CtnrPtr ctnr) const {
  SpecSet<IommuDomainId> out;
  for (const auto& [id, table] : domains_) {
    auto ov = owner_overrides_.find(id);
    CtnrPtr owner = ov != owner_overrides_.end() ? ov->second : table.owner();
    if (owner == ctnr) {
      out.add(id);
    }
  }
  return out;
}

SpecSet<PagePtr> IommuManager::DomainPageClosure(IommuDomainId domain) const {
  const PageTable* table = FindDomain(domain);
  ATMO_CHECK(table != nullptr, "DomainPageClosure of unknown domain");
  return table->PageClosure();
}

MapError IommuManager::CanMapDma(IommuDomainId domain, VAddr iova, PageSize size) const {
  const PageTable* table = FindDomain(domain);
  if (table == nullptr) {
    return MapError::kNotMapped;
  }
  return table->CanMap(iova, size);
}

std::uint64_t IommuManager::FreshNodesForDma(IommuDomainId domain, VAddr iova,
                                             PageSize size) const {
  const PageTable* table = FindDomain(domain);
  ATMO_CHECK(table != nullptr, "FreshNodesForDma of unknown domain");
  return table->FreshNodesFor(iova, size, nullptr);
}

bool IommuManager::Wf() const {
  // The hashed index mirrors domains_ exactly: same domain set, and every
  // entry points at the authoritative map node.
  if (domain_index_.size() != domains_.size()) {
    return false;
  }
  for (const auto& [id, table] : domains_) {
    auto it = domain_index_.find(id);
    if (it == domain_index_.end() || it->second != &table) {
      return false;
    }
  }
  for (const auto& [id, table] : domains_) {
    if (!table.StructureWf(*mem_)) {
      return false;
    }
  }
  for (const auto& [device, domain] : device_domains_) {
    if (domains_.find(domain) == domains_.end()) {
      return false;
    }
  }
  // Ownership overrides are an index over domains_ too: every override key
  // must reference a live domain, else a stale entry could resurrect a dead
  // domain's ownership in DomainsOwnedBy.
  for (const auto& [id, owner] : owner_overrides_) {
    if (domains_.find(id) == domains_.end()) {
      return false;
    }
  }
  return true;
}

IommuManager IommuManager::CloneForVerification(PhysMem* mem) const {
  IommuManager out(mem);
  out.next_domain_ = next_domain_;
  for (const auto& [id, table] : domains_) {
    // averif-lint: allow(hot-path-alloc) — fresh-clone path runs only on first capture; steady state uses CloneForVerificationInto over pooled state
    auto [it, inserted] = out.domains_.emplace(id, table.CloneForVerification(mem));
    // averif-lint: allow(hot-path-alloc) — fresh-clone path runs only on first capture (see above)
    out.domain_index_.emplace(id, &it->second);
  }
  out.device_domains_ = device_domains_;
  out.owner_overrides_ = owner_overrides_;
  return out;
}

void IommuManager::CloneForVerificationInto(IommuManager* out, PhysMem* mem) const {
  out->mem_ = mem;
  out->mmu_ = Mmu(mem);
  out->next_domain_ = next_domain_;
  // Sorted merge walk: per-domain pooled table clones into reused nodes.
  auto dit = out->domains_.begin();
  for (const auto& [id, table] : domains_) {
    while (dit != out->domains_.end() && dit->first < id) {
      dit = out->domains_.erase(dit);
    }
    if (dit != out->domains_.end() && dit->first == id) {
      table.CloneForVerificationInto(&dit->second, mem);
      ++dit;
    } else {
      // averif-lint: allow(hot-path-alloc) — emplace_hint refills recycled domain nodes; allocation only on growth past the pooled high-water mark
      dit = out->domains_.emplace_hint(dit, id, PageTable());
      table.CloneForVerificationInto(&dit->second, mem);
      ++dit;
    }
  }
  out->domains_.erase(dit, out->domains_.end());
  // Rebuild the hashed lockstep index (domain_index_) against the reused
  // nodes. Prune-then-upsert: clear()+emplace would destroy and reallocate
  // every index node per refill; overwriting live keys in place keeps the
  // steady-state refill allocation-free. owner_overrides_ copy-assign
  // reuses destination nodes.
  for (auto iit = out->domain_index_.begin(); iit != out->domain_index_.end();) {
    if (out->domains_.find(iit->first) == out->domains_.end()) {
      iit = out->domain_index_.erase(iit);
    } else {
      ++iit;
    }
  }
  for (auto& [id, table] : out->domains_) {
    out->domain_index_[id] = &table;
  }
  out->device_domains_ = device_domains_;
  out->owner_overrides_ = owner_overrides_;
  out->dirty_.Reset();  // clones start with an empty mutation log
}

}  // namespace atmo
