// CapKernel — a compact seL4-like capability microkernel (Table 3 baseline).
//
// Implements just enough of a classical capability kernel to compare IPC
// and mapping latency against Atmosphere on equal terms:
//   * capability spaces (CNodes) with typed, badged, rights-carrying caps
//     organized in a capability derivation tree (CDT),
//   * TCBs with register files that are really copied on context switch,
//   * endpoints with a synchronous call/reply fastpath that transfers four
//     message registers and mints a reply capability (a CDT insertion — the
//     bookkeeping that makes classical map/derive paths heavier),
//   * a 4-level page-table map operation that derives a mapped child cap
//     from the frame cap before installing the PTE.

#ifndef ATMO_SRC_BASELINE_CAP_KERNEL_H_
#define ATMO_SRC_BASELINE_CAP_KERNEL_H_

#include <array>
#include <cstdint>
#include <vector>

namespace atmo {

enum class CapType : std::uint8_t {
  kNull = 0,
  kEndpoint,
  kTcb,
  kFrame,
  kVSpace,
  kReply,
};

enum class CapRights : std::uint8_t {
  kNone = 0,
  kRead = 1,
  kWrite = 2,
  kGrant = 4,
  kAll = 7,
};

enum class CkStatus : std::uint8_t {
  kOk = 0,
  kInvalidCap,
  kWrongType,
  kNoRights,
  kWouldBlock,
  kDeliveredTo,  // internal: message handed to a waiting receiver
  kAlreadyMapped,
  kNoMemory,
};

inline constexpr std::uint32_t kCkNull = 0xffffffffu;
inline constexpr std::size_t kCkMsgRegs = 4;
inline constexpr std::size_t kCkRegFile = 18;  // x86-64 GPRs + rip/rflags

class CapKernel {
 public:
  explicit CapKernel(std::uint32_t cnode_slots = 256);

  // --- Object creation (setup path, untimed) ---
  std::uint32_t CreateTcb();
  std::uint32_t CreateEndpoint();
  std::uint32_t CreateVSpace();
  std::uint32_t CreateFrame();  // one 4K frame object
  // Installs a cap to `obj` of `type` into `tcb`'s cspace; returns the slot.
  std::uint32_t InstallCap(std::uint32_t tcb, CapType type, std::uint32_t obj,
                           CapRights rights, std::uint64_t badge = 0);

  // --- Timed operations (the Table 3 surface) ---
  // seL4_Call: transfer MRs through the endpoint; blocks the caller until
  // the reply. Returns kDeliveredTo if a receiver was waiting (fastpath),
  // kWouldBlock if the caller queued.
  CkStatus Call(std::uint32_t caller_tcb, std::uint32_t ep_cptr,
                const std::array<std::uint64_t, kCkMsgRegs>& mrs);
  // seL4_Recv: dequeue a sender or block.
  CkStatus Recv(std::uint32_t tcb, std::uint32_t ep_cptr);
  // seL4_ReplyRecv: reply to the caller through the reply cap, then wait
  // again on the endpoint (the server loop fastpath).
  CkStatus ReplyRecv(std::uint32_t server_tcb, std::uint32_t ep_cptr,
                     const std::array<std::uint64_t, kCkMsgRegs>& mrs);
  // seL4_Page_Map: derive + install a frame mapping into a vspace.
  CkStatus MapPage(std::uint32_t tcb, std::uint32_t frame_cptr, std::uint32_t vspace_cptr,
                   std::uint64_t vaddr, CapRights rights);
  CkStatus UnmapPage(std::uint32_t tcb, std::uint32_t frame_cptr);

  const std::array<std::uint64_t, kCkMsgRegs>& MessageRegs(std::uint32_t tcb) const;
  std::uint64_t Badge(std::uint32_t tcb) const;

 private:
  struct Cap {
    CapType type = CapType::kNull;
    std::uint32_t object = kCkNull;
    CapRights rights = CapRights::kNone;
    std::uint64_t badge = 0;
    // Capability derivation tree links.
    std::uint32_t cdt_parent = kCkNull;
    std::uint32_t cdt_first_child = kCkNull;
    std::uint32_t cdt_next_sibling = kCkNull;
    // For kFrame mapped-copies: where it is mapped.
    std::uint32_t mapped_vspace = kCkNull;
    std::uint64_t mapped_vaddr = 0;
  };

  struct Tcb {
    std::array<std::uint64_t, kCkRegFile> regs{};
    std::array<std::uint64_t, kCkMsgRegs> mrs{};
    std::uint64_t badge = 0;
    std::uint32_t cspace_base = 0;  // slice of the global cap table
    std::uint32_t wait_next = kCkNull;
    std::uint32_t reply_slot = kCkNull;  // minted reply cap (global index)
    bool blocked = false;
  };

  struct Endpoint {
    std::uint32_t queue_head = kCkNull;
    std::uint32_t queue_tail = kCkNull;
    bool senders = false;  // queue holds senders (else receivers)
  };

  struct VSpaceNode {
    std::array<std::uint32_t, 512> entries;  // index of next node / frame+1
    VSpaceNode() { entries.fill(0); }
  };

  Cap* LookupCap(std::uint32_t tcb, std::uint32_t cptr, CapType type, CkStatus* status);
  std::uint32_t AllocCapSlot();
  // Derives a child cap under `parent_index` (CDT insertion).
  std::uint32_t DeriveCap(std::uint32_t parent_index, CapType type, std::uint32_t object,
                          CapRights rights);
  void RevokeCap(std::uint32_t index);
  void ContextSwitch(std::uint32_t from, std::uint32_t to);
  void EnqueueWaiter(Endpoint* ep, std::uint32_t tcb, bool sender);
  std::uint32_t DequeueWaiter(Endpoint* ep);

  std::uint32_t cnode_slots_;
  std::vector<Cap> caps_;         // global cap table; cspaces are slices
  std::vector<Tcb> tcbs_;
  std::vector<Endpoint> endpoints_;
  std::vector<VSpaceNode> vnodes_;       // node 0 unused; roots recorded per vspace
  std::vector<std::uint32_t> vspaces_;   // vspace id -> root node index
  std::uint32_t frames_ = 0;             // frame objects are just ids
  std::uint32_t free_cap_head_ = kCkNull;
};

}  // namespace atmo

#endif  // ATMO_SRC_BASELINE_CAP_KERNEL_H_
