#include "src/baseline/linux_net.h"

#include <cstring>

namespace atmo {

TrapCost::TrapCost() {
  // A pseudo-random permutation to chase through on kernel entry (models
  // the cache/TLB effects of crossing the boundary).
  std::uint32_t x = 12345;
  for (std::size_t i = 0; i < chase_.size(); ++i) {
    x = x * 1664525 + 1013904223;
    chase_[i] = x % chase_.size();
  }
}

void TrapCost::Enter() {
  std::memcpy(kernel_save_.data(), user_regs_.data(), sizeof(user_regs_));
  std::uint32_t p = 0;
  for (int i = 0; i < 64; ++i) {
    p = chase_[p];
  }
  sink_ = sink_ + p;
}

void TrapCost::Exit() {
  std::memcpy(user_regs_.data(), kernel_save_.data(), sizeof(user_regs_));
  std::uint32_t p = 1;
  for (int i = 0; i < 32; ++i) {
    p = chase_[p];
  }
  sink_ = sink_ + p;
}

LinuxNetStack::LinuxNetStack(IxgbeDriver* driver) : driver_(driver) {}

void LinuxNetStack::AddRoute(std::uint32_t prefix, int prefix_len) {
  routes_[prefix & (prefix_len == 0 ? 0 : ~0u << (32 - prefix_len))] = prefix_len;
}

void LinuxNetStack::OpenPort(std::uint16_t port) { ports_[port] = true; }

bool LinuxNetStack::RouteLookup(std::uint32_t dst_ip) const {
  // Longest-prefix match by probing masks (generic, deliberately not a
  // trie — this is the "overly generic design" cost).
  for (int len = 32; len >= 0; --len) {
    std::uint32_t mask = len == 0 ? 0 : ~0u << (32 - len);
    auto it = routes_.find(dst_ip & mask);
    if (it != routes_.end() && it->second == len) {
      return true;
    }
  }
  return false;
}

bool LinuxNetStack::IpInput(SkBuff* skb) {
  // Re-validate the IPv4 header (the driver does not offload checksums).
  auto parsed = ParseUdpFrame(skb->data.data(), skb->len);
  if (!parsed.has_value()) {
    return false;
  }
  skb->flow = parsed->flow;
  if (!RouteLookup(parsed->flow.dst_ip)) {
    return false;  // not for us / no route
  }
  return true;
}

bool LinuxNetStack::UdpInput(SkBuff* skb) {
  auto it = ports_.find(skb->flow.dst_port);
  return it != ports_.end() && it->second;
}

void LinuxNetStack::SoftIrq() {
  RxFrame frames[16];
  std::uint32_t got = driver_->RxBurst(frames, 16);
  for (std::uint32_t i = 0; i < got; ++i) {
    // sk_buff allocation + copy into kernel memory.
    auto skb = std::make_unique<SkBuff>();
    skb->data.assign(frames[i].data.begin(), frames[i].data.begin() + frames[i].len);
    skb->len = frames[i].len;
    if (!IpInput(skb.get()) || !UdpInput(skb.get())) {
      ++dropped_;
      continue;
    }
    backlog_.push_back(std::move(skb));
  }
}

std::size_t LinuxNetStack::Recv(std::uint8_t* user_buf, std::size_t cap) {
  trap_.Enter();
  if (backlog_.empty()) {
    SoftIrq();
  }
  std::size_t out = 0;
  if (!backlog_.empty()) {
    std::unique_ptr<SkBuff> skb = std::move(backlog_.front());
    backlog_.pop_front();
    auto parsed = ParseUdpFrame(skb->data.data(), skb->len);
    if (parsed.has_value()) {
      out = std::min(cap, parsed->payload_len);
      std::memcpy(user_buf, parsed->payload, out);  // copy_to_user
      ++delivered_;
    }
  }
  trap_.Exit();
  return out;
}

std::size_t LinuxNetStack::RecvRaw(std::uint8_t* user_buf, std::size_t cap) {
  trap_.Enter();
  if (backlog_.empty()) {
    // Raw sockets bypass the UDP port demux but still pay the softirq path:
    // sk_buff alloc + copy + IP validation.
    RxFrame frames[16];
    std::uint32_t got = driver_->RxBurst(frames, 16);
    for (std::uint32_t i = 0; i < got; ++i) {
      auto skb = std::make_unique<SkBuff>();
      skb->data.assign(frames[i].data.begin(), frames[i].data.begin() + frames[i].len);
      skb->len = frames[i].len;
      if (!IpInput(skb.get())) {
        ++dropped_;
        continue;
      }
      backlog_.push_back(std::move(skb));
    }
  }
  std::size_t out = 0;
  if (!backlog_.empty()) {
    std::unique_ptr<SkBuff> skb = std::move(backlog_.front());
    backlog_.pop_front();
    out = std::min(cap, skb->len);
    std::memcpy(user_buf, skb->data.data(), out);
    ++delivered_;
  }
  trap_.Exit();
  return out;
}

bool LinuxNetStack::SendRaw(const std::uint8_t* frame, std::size_t len) {
  trap_.Enter();
  auto skb = std::make_unique<SkBuff>();
  skb->data.assign(frame, frame + len);
  skb->len = len;
  TxFrame tx{skb->data.data(), static_cast<std::uint16_t>(skb->len)};
  bool ok = driver_->TxBurst(&tx, 1) == 1;
  trap_.Exit();
  return ok;
}

bool LinuxNetStack::Send(const FiveTuple& flow, const std::uint8_t* payload, std::size_t len) {
  trap_.Enter();
  // sk_buff alloc + copy_from_user + header construction + route lookup.
  auto skb = std::make_unique<SkBuff>();
  skb->data.resize(kMaxFrameLen);
  if (!RouteLookup(flow.dst_ip)) {
    trap_.Exit();
    return false;
  }
  MacAddr dst{0x02, 0, 0, 0, 0, 2};
  skb->len = BuildUdpFrame(skb->data.data(), mac_, dst, flow, payload, len);
  TxFrame frame{skb->data.data(), static_cast<std::uint16_t>(skb->len)};
  bool ok = driver_->TxBurst(&frame, 1) == 1;
  trap_.Exit();
  return ok;
}

}  // namespace atmo
