#include "src/baseline/cap_kernel.h"

#include <cstring>

#include "src/vstd/check.h"

namespace atmo {

CapKernel::CapKernel(std::uint32_t cnode_slots) : cnode_slots_(cnode_slots) {}

std::uint32_t CapKernel::CreateTcb() {
  Tcb tcb;
  tcb.cspace_base = static_cast<std::uint32_t>(caps_.size());
  caps_.resize(caps_.size() + cnode_slots_);
  tcbs_.push_back(tcb);
  return static_cast<std::uint32_t>(tcbs_.size() - 1);
}

std::uint32_t CapKernel::CreateEndpoint() {
  endpoints_.push_back(Endpoint{});
  return static_cast<std::uint32_t>(endpoints_.size() - 1);
}

std::uint32_t CapKernel::CreateVSpace() {
  vnodes_.push_back(VSpaceNode{});
  vspaces_.push_back(static_cast<std::uint32_t>(vnodes_.size() - 1));
  return static_cast<std::uint32_t>(vspaces_.size() - 1);
}

std::uint32_t CapKernel::CreateFrame() { return frames_++; }

std::uint32_t CapKernel::InstallCap(std::uint32_t tcb, CapType type, std::uint32_t obj,
                                    CapRights rights, std::uint64_t badge) {
  ATMO_CHECK(tcb < tcbs_.size(), "InstallCap: bad tcb");
  std::uint32_t base = tcbs_[tcb].cspace_base;
  for (std::uint32_t slot = 0; slot < cnode_slots_; ++slot) {
    if (caps_[base + slot].type == CapType::kNull) {
      caps_[base + slot] = Cap{.type = type, .object = obj, .rights = rights, .badge = badge};
      return slot;
    }
  }
  ATMO_FAIL("InstallCap: cspace full");
}

CapKernel::Cap* CapKernel::LookupCap(std::uint32_t tcb, std::uint32_t cptr, CapType type,
                                     CkStatus* status) {
  if (tcb >= tcbs_.size() || cptr >= cnode_slots_) {
    *status = CkStatus::kInvalidCap;
    return nullptr;
  }
  Cap* cap = &caps_[tcbs_[tcb].cspace_base + cptr];
  if (cap->type == CapType::kNull) {
    *status = CkStatus::kInvalidCap;
    return nullptr;
  }
  if (cap->type != type) {
    *status = CkStatus::kWrongType;
    return nullptr;
  }
  *status = CkStatus::kOk;
  return cap;
}

std::uint32_t CapKernel::AllocCapSlot() {
  // Reply caps and derived caps live past the cspace slices.
  caps_.push_back(Cap{});
  return static_cast<std::uint32_t>(caps_.size() - 1);
}

std::uint32_t CapKernel::DeriveCap(std::uint32_t parent_index, CapType type,
                                   std::uint32_t object, CapRights rights) {
  std::uint32_t child = AllocCapSlot();
  Cap& c = caps_[child];
  c.type = type;
  c.object = object;
  c.rights = rights;
  c.cdt_parent = parent_index;
  c.cdt_next_sibling = caps_[parent_index].cdt_first_child;
  caps_[parent_index].cdt_first_child = child;
  return child;
}

void CapKernel::RevokeCap(std::uint32_t index) {
  Cap& cap = caps_[index];
  // Unlink from the parent's child list.
  if (cap.cdt_parent != kCkNull) {
    std::uint32_t* link = &caps_[cap.cdt_parent].cdt_first_child;
    while (*link != kCkNull && *link != index) {
      link = &caps_[*link].cdt_next_sibling;
    }
    if (*link == index) {
      *link = cap.cdt_next_sibling;
    }
  }
  cap = Cap{};
}

void CapKernel::ContextSwitch(std::uint32_t from, std::uint32_t to) {
  // The real cost of a direct-switch IPC: both register files move.
  std::array<std::uint64_t, kCkRegFile> scratch;
  std::memcpy(scratch.data(), tcbs_[from].regs.data(), sizeof(scratch));
  std::memcpy(tcbs_[from].regs.data(), tcbs_[to].regs.data(), sizeof(scratch));
  std::memcpy(tcbs_[to].regs.data(), scratch.data(), sizeof(scratch));
}

void CapKernel::EnqueueWaiter(Endpoint* ep, std::uint32_t tcb, bool sender) {
  if (ep->queue_head == kCkNull) {
    ep->senders = sender;
    ep->queue_head = tcb;
    ep->queue_tail = tcb;
  } else {
    ATMO_CHECK(ep->senders == sender, "CapKernel: mixed endpoint queue");
    tcbs_[ep->queue_tail].wait_next = tcb;
    ep->queue_tail = tcb;
  }
  tcbs_[tcb].wait_next = kCkNull;
  tcbs_[tcb].blocked = true;
}

std::uint32_t CapKernel::DequeueWaiter(Endpoint* ep) {
  std::uint32_t tcb = ep->queue_head;
  ATMO_CHECK(tcb != kCkNull, "CapKernel: dequeue from empty endpoint");
  ep->queue_head = tcbs_[tcb].wait_next;
  if (ep->queue_head == kCkNull) {
    ep->queue_tail = kCkNull;
  }
  tcbs_[tcb].blocked = false;
  return tcb;
}

CkStatus CapKernel::Call(std::uint32_t caller_tcb, std::uint32_t ep_cptr,
                         const std::array<std::uint64_t, kCkMsgRegs>& mrs) {
  CkStatus status;
  Cap* cap = LookupCap(caller_tcb, ep_cptr, CapType::kEndpoint, &status);
  if (cap == nullptr) {
    return status;
  }
  if ((static_cast<std::uint8_t>(cap->rights) & static_cast<std::uint8_t>(CapRights::kWrite)) ==
      0) {
    return CkStatus::kNoRights;
  }
  Endpoint* ep = &endpoints_[cap->object];
  tcbs_[caller_tcb].mrs = mrs;

  if (ep->queue_head != kCkNull && !ep->senders) {
    // Fastpath: a receiver is waiting — transfer MRs + badge, mint the
    // reply cap, switch directly.
    std::uint32_t receiver = DequeueWaiter(ep);
    tcbs_[receiver].mrs = tcbs_[caller_tcb].mrs;
    tcbs_[receiver].badge = cap->badge;
    tcbs_[receiver].reply_slot = DeriveCap(
        tcbs_[caller_tcb].cspace_base + ep_cptr, CapType::kReply, caller_tcb, CapRights::kAll);
    tcbs_[caller_tcb].blocked = true;  // awaiting reply
    ContextSwitch(caller_tcb, receiver);
    return CkStatus::kDeliveredTo;
  }
  EnqueueWaiter(ep, caller_tcb, /*sender=*/true);
  return CkStatus::kWouldBlock;
}

CkStatus CapKernel::Recv(std::uint32_t tcb, std::uint32_t ep_cptr) {
  CkStatus status;
  Cap* cap = LookupCap(tcb, ep_cptr, CapType::kEndpoint, &status);
  if (cap == nullptr) {
    return status;
  }
  if ((static_cast<std::uint8_t>(cap->rights) & static_cast<std::uint8_t>(CapRights::kRead)) ==
      0) {
    return CkStatus::kNoRights;
  }
  Endpoint* ep = &endpoints_[cap->object];
  if (ep->queue_head != kCkNull && ep->senders) {
    std::uint32_t sender = DequeueWaiter(ep);
    tcbs_[tcb].mrs = tcbs_[sender].mrs;
    tcbs_[tcb].reply_slot = DeriveCap(tcbs_[tcb].cspace_base + ep_cptr, CapType::kReply,
                                      sender, CapRights::kAll);
    // Sender stays blocked awaiting the reply.
    tcbs_[sender].blocked = true;
    return CkStatus::kOk;
  }
  EnqueueWaiter(ep, tcb, /*sender=*/false);
  return CkStatus::kWouldBlock;
}

CkStatus CapKernel::ReplyRecv(std::uint32_t server_tcb, std::uint32_t ep_cptr,
                              const std::array<std::uint64_t, kCkMsgRegs>& mrs) {
  Tcb& server = tcbs_[server_tcb];
  if (server.reply_slot == kCkNull || caps_[server.reply_slot].type != CapType::kReply) {
    return CkStatus::kInvalidCap;
  }
  std::uint32_t caller = caps_[server.reply_slot].object;
  // Consume the reply cap (CDT removal) and deliver.
  RevokeCap(server.reply_slot);
  server.reply_slot = kCkNull;
  tcbs_[caller].mrs = mrs;
  tcbs_[caller].blocked = false;
  ContextSwitch(server_tcb, caller);
  // Then wait on the endpoint again.
  return Recv(server_tcb, ep_cptr);
}

CkStatus CapKernel::MapPage(std::uint32_t tcb, std::uint32_t frame_cptr,
                            std::uint32_t vspace_cptr, std::uint64_t vaddr,
                            CapRights rights) {
  CkStatus status;
  Cap* frame = LookupCap(tcb, frame_cptr, CapType::kFrame, &status);
  if (frame == nullptr) {
    return status;
  }
  Cap* vspace = LookupCap(tcb, vspace_cptr, CapType::kVSpace, &status);
  if (vspace == nullptr) {
    return status;
  }
  if (frame->mapped_vspace != kCkNull) {
    return CkStatus::kAlreadyMapped;
  }

  // Walk/extend the 4-level table.
  std::uint32_t node = vspaces_[vspace->object];
  for (int level = 4; level > 1; --level) {
    std::uint32_t index =
        static_cast<std::uint32_t>((vaddr >> (12 + 9 * (level - 1))) & 0x1ff);
    std::uint32_t next = vnodes_[node].entries[index];
    if (next == 0) {
      vnodes_.push_back(VSpaceNode{});
      next = static_cast<std::uint32_t>(vnodes_.size() - 1);
      vnodes_[node].entries[index] = next;
    }
    node = next;
  }
  std::uint32_t leaf_index = static_cast<std::uint32_t>((vaddr >> 12) & 0x1ff);
  if (vnodes_[node].entries[leaf_index] != 0) {
    return CkStatus::kAlreadyMapped;
  }
  // Derive the mapped-copy cap (the classical bookkeeping step) before
  // installing the PTE. DeriveCap may grow the cap table, so re-address the
  // frame cap by index afterwards.
  std::uint32_t frame_index = tcbs_[tcb].cspace_base + frame_cptr;
  std::uint32_t frame_obj = frame->object;
  std::uint32_t vspace_obj = vspace->object;
  std::uint32_t derived = DeriveCap(frame_index, CapType::kFrame, frame_obj, rights);
  caps_[derived].mapped_vspace = vspace_obj;
  caps_[derived].mapped_vaddr = vaddr;
  caps_[frame_index].mapped_vspace = vspace_obj;
  caps_[frame_index].mapped_vaddr = vaddr;
  vnodes_[node].entries[leaf_index] = frame_obj + 1;
  return CkStatus::kOk;
}

CkStatus CapKernel::UnmapPage(std::uint32_t tcb, std::uint32_t frame_cptr) {
  CkStatus status;
  Cap* frame = LookupCap(tcb, frame_cptr, CapType::kFrame, &status);
  if (frame == nullptr) {
    return status;
  }
  if (frame->mapped_vspace == kCkNull) {
    return CkStatus::kInvalidCap;
  }
  std::uint64_t vaddr = frame->mapped_vaddr;
  std::uint32_t node = vspaces_[frame->mapped_vspace];
  for (int level = 4; level > 1; --level) {
    std::uint32_t index =
        static_cast<std::uint32_t>((vaddr >> (12 + 9 * (level - 1))) & 0x1ff);
    node = vnodes_[node].entries[index];
    if (node == 0) {
      return CkStatus::kInvalidCap;
    }
  }
  vnodes_[node].entries[(vaddr >> 12) & 0x1ff] = 0;
  // Revoke the derived mapped-copy.
  std::uint32_t child = caps_[tcbs_[tcb].cspace_base + frame_cptr].cdt_first_child;
  if (child != kCkNull) {
    RevokeCap(child);
  }
  frame->mapped_vspace = kCkNull;
  return CkStatus::kOk;
}

const std::array<std::uint64_t, kCkMsgRegs>& CapKernel::MessageRegs(std::uint32_t tcb) const {
  return tcbs_[tcb].mrs;
}

std::uint64_t CapKernel::Badge(std::uint32_t tcb) const { return tcbs_[tcb].badge; }

}  // namespace atmo
