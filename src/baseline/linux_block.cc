#include "src/baseline/linux_block.h"

namespace atmo {

LinuxBlockLayer::LinuxBlockLayer(NvmeDriver* driver) : driver_(driver) {}

std::uint32_t LinuxBlockLayer::SubmitBatch(const AioRequest* reqs, std::uint32_t n) {
  trap_.Enter();
  // Block-layer entry: allocate a bio per request and insert it into the
  // elevator (ordered by LBA).
  for (std::uint32_t i = 0; i < n; ++i) {
    auto bio = std::make_unique<Bio>();
    bio->req = reqs[i];
    bio->cid = next_cid_++;
    elevator_.emplace(reqs[i].lba, std::move(bio));
  }
  // Unplug: dispatch in elevator order, doorbell per dispatched request
  // (the mq path rings per hardware dispatch).
  std::uint32_t accepted = 0;
  for (auto it = elevator_.begin(); it != elevator_.end();) {
    Bio* bio = it->second.get();
    bool ok = bio->req.write
                  ? driver_->SubmitWrite(bio->req.lba, bio->req.blocks, bio->req.buffer,
                                         bio->cid)
                  : driver_->SubmitRead(bio->req.lba, bio->req.blocks, bio->req.buffer,
                                        bio->cid);
    if (!ok) {
      break;  // device queue full; remaining requests stay plugged
    }
    driver_->RingDoorbell();
    inflight_[bio->cid] = bio->req.user_tag;
    it = elevator_.erase(it);
    ++accepted;
  }
  trap_.Exit();
  return accepted;
}

std::uint32_t LinuxBlockLayer::GetEvents(AioEvent* out, std::uint32_t n) {
  trap_.Enter();
  NvmeCompletion completions[64];
  std::uint32_t want = n > 64 ? 64 : n;
  std::uint32_t got = driver_->PollCompletions(completions, want);
  for (std::uint32_t i = 0; i < got; ++i) {
    auto it = inflight_.find(completions[i].cid);
    out[i].user_tag = it != inflight_.end() ? it->second : 0;
    out[i].error = completions[i].error;
    if (it != inflight_.end()) {
      inflight_.erase(it);
    }
  }
  trap_.Exit();
  return got;
}

}  // namespace atmo
