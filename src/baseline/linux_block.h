// Linux-like block layer baseline (Fig 5 "linux (fio/libaio)" series).
//
// Models the fio + libaio + multi-queue block layer path of the paper's
// NVMe comparison with real per-request work:
//   * an io_submit trap per batch and an io_getevents trap per reap,
//   * per-request bio allocation, block-layer request bookkeeping (an
//     elevator-style ordered queue), and plug/unplug dispatch that rings
//     the device doorbell per dispatched request,
//   * completion reaping through the same layered bookkeeping.
//
// The device underneath is the same SimNvme/NvmeDriver as the fast paths.

#ifndef ATMO_SRC_BASELINE_LINUX_BLOCK_H_
#define ATMO_SRC_BASELINE_LINUX_BLOCK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/baseline/linux_net.h"  // TrapCost
#include "src/drivers/nvme_driver.h"

namespace atmo {

struct AioRequest {
  bool write = false;
  std::uint64_t lba = 0;
  std::uint64_t blocks = 0;
  VAddr buffer = 0;
  std::uint32_t user_tag = 0;
};

struct AioEvent {
  std::uint32_t user_tag = 0;
  bool error = false;
};

class LinuxBlockLayer {
 public:
  explicit LinuxBlockLayer(NvmeDriver* driver);

  // io_submit(2)-like: queues `n` requests through the block layer and
  // dispatches them to the device. Returns requests accepted.
  std::uint32_t SubmitBatch(const AioRequest* reqs, std::uint32_t n);

  // io_getevents(2)-like: reaps up to `n` completions.
  std::uint32_t GetEvents(AioEvent* out, std::uint32_t n);

 private:
  struct Bio {
    AioRequest req;
    std::uint32_t cid = 0;
  };

  NvmeDriver* driver_;
  TrapCost trap_;
  std::uint32_t next_cid_ = 1;
  // Elevator: requests ordered by LBA before dispatch.
  std::multimap<std::uint64_t, std::unique_ptr<Bio>> elevator_;
  // cid -> user tag for completion matching.
  std::map<std::uint32_t, std::uint32_t> inflight_;
};

}  // namespace atmo

#endif  // ATMO_SRC_BASELINE_LINUX_BLOCK_H_
