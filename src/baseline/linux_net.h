// Linux-like synchronous network stack baseline (Fig 4/6 "linux" series).
//
// The paper's Linux baseline crosses the syscall boundary per packet and
// walks a generic, layered stack. This model reproduces that cost structure
// with real work, not sleeps:
//   * a trap on every send/recv (register save/restore + kernel-entry
//     pointer chase),
//   * per-packet sk_buff heap allocation and a data copy into it,
//   * virtual-dispatch layer traversal: ethernet -> IPv4 (checksum
//     re-verification + longest-prefix route lookup) -> UDP (port-table
//     lookup) -> socket backlog,
//   * a second copy from the sk_buff to the user buffer.
//
// The NIC underneath is the same SimNic/IxgbeDriver as the fast paths, so
// the measured difference is exactly the stack overhead.

#ifndef ATMO_SRC_BASELINE_LINUX_NET_H_
#define ATMO_SRC_BASELINE_LINUX_NET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/drivers/ixgbe_driver.h"

namespace atmo {

// Kernel-entry cost model: saves/restores a register area and chases
// pointers through a small "kernel entry" table — deterministic work that
// the compiler cannot elide.
class TrapCost {
 public:
  TrapCost();
  void Enter();
  void Exit();

 private:
  std::array<std::uint64_t, 32> user_regs_{};
  std::array<std::uint64_t, 32> kernel_save_{};
  std::array<std::uint32_t, 256> chase_;
  volatile std::uint64_t sink_ = 0;
};

struct SkBuff {
  std::vector<std::uint8_t> data;
  std::size_t len = 0;
  FiveTuple flow;
};

class LinuxNetStack {
 public:
  explicit LinuxNetStack(IxgbeDriver* driver);

  // Adds a route (dst prefix -> interface metric) and an open UDP port.
  void AddRoute(std::uint32_t prefix, int prefix_len);
  void OpenPort(std::uint16_t port);

  // recvmsg(2)-like: one packet per call, trap included. Returns bytes of
  // UDP payload delivered, 0 if nothing pending.
  std::size_t Recv(std::uint8_t* user_buf, std::size_t cap);

  // sendmsg(2)-like: one packet per call, trap included.
  bool Send(const FiveTuple& flow, const std::uint8_t* payload, std::size_t len);

  // Raw-socket variants (packet sockets, as a Linux load balancer would
  // use): full frames cross the boundary, still one trap + sk_buff +
  // copies per packet.
  std::size_t RecvRaw(std::uint8_t* user_buf, std::size_t cap);
  bool SendRaw(const std::uint8_t* frame, std::size_t len);

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  // Bottom-half: pull a batch from the driver into the socket backlog,
  // running the full input path per packet.
  void SoftIrq();
  bool IpInput(SkBuff* skb);
  bool UdpInput(SkBuff* skb);
  bool RouteLookup(std::uint32_t dst_ip) const;

  IxgbeDriver* driver_;
  TrapCost trap_;
  std::map<std::uint32_t, int> routes_;  // masked prefix -> length
  std::map<std::uint16_t, bool> ports_;
  std::deque<std::unique_ptr<SkBuff>> backlog_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  MacAddr mac_{0x02, 0, 0, 0, 0, 1};
};

}  // namespace atmo

#endif  // ATMO_SRC_BASELINE_LINUX_NET_H_
