// Simulated NVMe SSD (Intel P3700-like).
//
// One I/O queue pair in simulated physical memory: a submission queue of
// 32-byte commands and a completion queue of 16-byte entries with a phase
// bit, plus doorbells. The device executes commands by really copying 4 KiB
// blocks between an internal (lazily allocated) flash store and host memory
// through the IOMMU — read/write amplification, batching, and polling costs
// on the driver side are therefore real.
//
// SQ entry layout:
//   offset  0: u64 — bits [7:0] opcode (1=read, 2=write), bits [63:32] CID
//   offset  8: u64 starting LBA (4 KiB blocks)
//   offset 16: u64 block count
//   offset 24: u64 buffer IOVA
// CQ entry layout:
//   offset  0: u64 — bits [31:0] CID, bit 32 status-error, bit 63 phase
//   offset  8: u64 reserved

#ifndef ATMO_SRC_HW_SIM_NVME_H_
#define ATMO_SRC_HW_SIM_NVME_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/hw/mmio.h"
#include "src/hw/phys_mem.h"
#include "src/iommu/iommu_manager.h"

namespace atmo {

inline constexpr std::uint64_t kNvmeBlockBytes = 4096;
inline constexpr std::uint64_t kNvmeSqEntryBytes = 32;
inline constexpr std::uint64_t kNvmeCqEntryBytes = 16;
inline constexpr std::uint8_t kNvmeOpRead = 1;
inline constexpr std::uint8_t kNvmeOpWrite = 2;

class SimNvme {
 public:
  SimNvme(PhysMem* mem, IommuManager* iommu, DeviceId device_id, std::uint64_t capacity_blocks);

  DeviceId device_id() const { return device_id_; }
  std::uint64_t capacity_blocks() const { return capacity_blocks_; }

  // Queue-pair configuration (driver side).
  void ConfigureQueues(VAddr sq_iova, VAddr cq_iova, std::uint32_t entries);
  // Submission doorbell: new SQ tail (free-running counter). An MMIO
  // posted write (see src/hw/mmio.h).
  void RingSqDoorbell(std::uint32_t tail) {
    MmioPostedWrite();
    sq_tail_ = tail;
  }

  // Device execution: process up to `budget` commands, posting completions.
  std::uint32_t ProcessCommands(std::uint32_t budget);

  std::uint64_t reads_done() const { return reads_done_; }
  std::uint64_t writes_done() const { return writes_done_; }
  std::uint64_t errors() const { return errors_; }

  // Debug/backdoor access to the flash store (tests).
  void BackdoorWrite(std::uint64_t lba, const void* data, std::uint64_t len);
  void BackdoorRead(std::uint64_t lba, void* data, std::uint64_t len) const;

 private:
  std::uint8_t* Block(std::uint64_t lba, bool create);
  void PostCompletion(std::uint32_t cid, bool error);

  PhysMem* mem_;
  IommuManager* iommu_;
  DeviceId device_id_;
  std::uint64_t capacity_blocks_;

  VAddr sq_ = 0;
  VAddr cq_ = 0;
  std::uint32_t entries_ = 0;
  std::uint32_t sq_head_ = 0;
  std::uint32_t sq_tail_ = 0;
  std::uint32_t cq_tail_ = 0;  // free-running; phase = (cq_tail_/entries_)&1

  std::map<std::uint64_t, std::unique_ptr<std::uint8_t[]>> flash_;
  std::uint64_t reads_done_ = 0;
  std::uint64_t writes_done_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_HW_SIM_NVME_H_
