#include "src/hw/mmu.h"

namespace atmo {

std::uint64_t MakePte(PAddr target, MapEntryPerm perm, bool leaf_superpage) {
  std::uint64_t pte = kPtePresent | (target & kPteAddrMask);
  if (perm.writable) {
    pte |= kPteWritable;
  }
  if (perm.user) {
    pte |= kPteUser;
  }
  if (perm.no_execute) {
    pte |= kPteNx;
  }
  if (leaf_superpage) {
    pte |= kPtePageSize;
  }
  return pte;
}

MapEntryPerm PtePerm(std::uint64_t pte) {
  MapEntryPerm perm;
  perm.writable = (pte & kPteWritable) != 0;
  perm.user = (pte & kPteUser) != 0;
  perm.no_execute = (pte & kPteNx) != 0;
  return perm;
}

namespace {

// Rights are intersected down the walk: a mapping is writable/user only if
// every level grants it; it is executable only if no level sets NX.
MapEntryPerm Intersect(MapEntryPerm a, MapEntryPerm b) {
  MapEntryPerm out;
  out.writable = a.writable && b.writable;
  out.user = a.user && b.user;
  out.no_execute = a.no_execute || b.no_execute;
  return out;
}

}  // namespace

std::optional<WalkResult> Mmu::Walk(PAddr cr3, VAddr va) const {
  if (!mem_->Valid(cr3) || cr3 % kPageSize4K != 0) {
    return std::nullopt;
  }

  MapEntryPerm rights{.writable = true, .user = true, .no_execute = false};
  PAddr table = cr3;
  for (int level = 4; level >= 1; --level) {
    std::uint64_t pte = mem_->HwReadU64(table + VaIndex(va, level) * 8);
    if ((pte & kPtePresent) == 0) {
      return std::nullopt;
    }
    rights = Intersect(rights, PtePerm(pte));
    PAddr target = pte & kPteAddrMask;

    bool leaf = level == 1;
    PageSize size = PageSize::k4K;
    if (level == 3 && (pte & kPtePageSize) != 0) {
      leaf = true;
      size = PageSize::k1G;
    } else if (level == 2 && (pte & kPtePageSize) != 0) {
      leaf = true;
      size = PageSize::k2M;
    } else if (level == 1) {
      size = PageSize::k4K;
    }

    if (leaf) {
      std::uint64_t page_bytes = PageBytes(size);
      if (target % page_bytes != 0) {
        return std::nullopt;  // malformed superpage base: hardware faults
      }
      WalkResult out;
      out.page_base = target;
      out.paddr = target + (va & (page_bytes - 1));
      out.size = size;
      out.perm = rights;
      return out;
    }
    table = target;
    if (!mem_->Valid(table) || table % kPageSize4K != 0) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

bool Mmu::Permits(PAddr cr3, VAddr va, Access access, bool user_mode) const {
  std::optional<WalkResult> walk = Walk(cr3, va);
  if (!walk.has_value()) {
    return false;
  }
  if (user_mode && !walk->perm.user) {
    return false;
  }
  switch (access) {
    case Access::kRead:
      return true;
    case Access::kWrite:
      return walk->perm.writable;
    case Access::kExecute:
      return !walk->perm.no_execute;
  }
  return false;
}

}  // namespace atmo
