// Simulated 10 GbE NIC (Intel 82599 "ixgbe"-like).
//
// Models the device side of the paper's network experiments: descriptor
// rings in simulated physical memory, head/tail registers, and DMA through
// the IOMMU. The device does real work — it writes real frame bytes into RX
// buffers and reads real bytes out of TX buffers — so driver-side costs
// (polling, batching, copies) measure meaningfully.
//
// Descriptor layout (16 bytes, legacy-ring style):
//   offset 0: u64 buffer IOVA
//   offset 8: u64 meta — bits [15:0] length, bit 16 DD (descriptor done)
//
// RX: the driver posts empty buffers and bumps the tail; the device fills
// descriptors from head to tail (frame bytes + length + DD). TX: the driver
// writes frames, bumps the tail; the device consumes head to tail, handing
// each frame to the sink and setting DD.

#ifndef ATMO_SRC_HW_SIM_NIC_H_
#define ATMO_SRC_HW_SIM_NIC_H_

#include <cstdint>
#include <functional>

#include "src/hw/mmio.h"
#include "src/hw/phys_mem.h"
#include "src/iommu/iommu_manager.h"
#include "src/vstd/types.h"

namespace atmo {

inline constexpr std::uint64_t kNicDescBytes = 16;
inline constexpr std::uint64_t kNicDescDd = 1ull << 16;
inline constexpr std::uint64_t kNicDescLenMask = 0xffff;

// Fills `buf` (kMaxFrameLen capacity) with the next ingress frame; returns
// its length, or 0 for "no traffic".
using PacketSource = std::function<std::size_t(std::uint8_t* buf)>;
// Consumes one egress frame.
using PacketSink = std::function<void(const std::uint8_t* frame, std::size_t len)>;

class SimNic {
 public:
  SimNic(PhysMem* mem, IommuManager* iommu, DeviceId device_id);

  DeviceId device_id() const { return device_id_; }

  // --- Device configuration registers (driver side) ---
  void ConfigureRxRing(VAddr ring_iova, std::uint32_t entries);
  void ConfigureTxRing(VAddr ring_iova, std::uint32_t entries);
  // Tail registers are MMIO doorbells: each write pays the posted-write
  // cost (see src/hw/mmio.h), which is what batching amortizes.
  void SetRxTail(std::uint32_t tail) {
    MmioPostedWrite();
    rx_tail_ = tail;
  }
  void SetTxTail(std::uint32_t tail) {
    MmioPostedWrite();
    tx_tail_ = tail;
  }
  std::uint32_t rx_head() const { return rx_head_; }
  std::uint32_t tx_head() const { return tx_head_; }

  // --- Traffic endpoints ---
  void SetPacketSource(PacketSource source) { source_ = std::move(source); }
  void SetPacketSink(PacketSink sink) { sink_ = std::move(sink); }

  // --- Device execution (the "hardware" runs when these are called) ---
  // Receives up to `budget` frames into posted RX buffers. Returns frames
  // delivered. DMA faults (IOMMU denials) drop the frame and count in
  // dma_faults().
  std::uint32_t DeliverRx(std::uint32_t budget);
  // Transmits up to `budget` frames from the TX ring. Returns frames sent.
  std::uint32_t ProcessTx(std::uint32_t budget);

  std::uint64_t rx_delivered() const { return rx_delivered_; }
  std::uint64_t tx_sent() const { return tx_sent_; }
  std::uint64_t dma_faults() const { return dma_faults_; }

 private:
  // Reads one descriptor through the IOMMU; false on fault.
  bool ReadDesc(VAddr ring, std::uint32_t index, std::uint64_t* iova, std::uint64_t* meta);
  bool WriteDescMeta(VAddr ring, std::uint32_t index, std::uint64_t meta);

  PhysMem* mem_;
  IommuManager* iommu_;
  DeviceId device_id_;

  VAddr rx_ring_ = 0;
  std::uint32_t rx_entries_ = 0;
  std::uint32_t rx_head_ = 0;
  std::uint32_t rx_tail_ = 0;

  VAddr tx_ring_ = 0;
  std::uint32_t tx_entries_ = 0;
  std::uint32_t tx_head_ = 0;
  std::uint32_t tx_tail_ = 0;

  PacketSource source_;
  PacketSink sink_;

  std::uint64_t rx_delivered_ = 0;
  std::uint64_t tx_sent_ = 0;
  std::uint64_t dma_faults_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_HW_SIM_NIC_H_
