// Simulated physical memory.
//
// The paper's kernel runs on bare-metal x86-64; this model replaces DRAM with
// an array of 4 KiB frames addressed by physical address. Page-table nodes,
// DMA buffers and user pages live here as real bytes — the MMU walker
// (src/hw/mmu.h) and the simulated devices read the same bits the kernel
// writes, which is what makes the refinement statement ("the abstract map
// equals what the MMU resolves") meaningful.
//
// CPU-side accesses are gated by FramePerm, the frame-granularity linear
// permission minted by the page allocator. Device-side (DMA) accesses bypass
// software permissions — hardware does not hold ghost state — and instead go
// through the IOMMU translation in the device models.

#ifndef ATMO_SRC_HW_PHYS_MEM_H_
#define ATMO_SRC_HW_PHYS_MEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/vstd/check.h"
#include "src/vstd/types.h"

namespace atmo {

// Linear permission for one physical page (4K/2M/1G). Move-only; minted by
// the page allocator on allocation and consumed on free.
class FramePerm {
 public:
  static FramePerm Mint(PAddr base, PageSize size) { return FramePerm(base, size); }

  FramePerm(FramePerm&& other) noexcept
      : base_(other.base_), size_(other.size_), alive_(other.alive_) {
    other.alive_ = false;
  }
  FramePerm& operator=(FramePerm&& other) noexcept {
    if (this != &other) {
      base_ = other.base_;
      size_ = other.size_;
      alive_ = other.alive_;
      other.alive_ = false;
    }
    return *this;
  }
  FramePerm(const FramePerm&) = delete;
  FramePerm& operator=(const FramePerm&) = delete;

  PAddr base() const {
    ATMO_CHECK(alive_, "FramePerm used after move/consume");
    return base_;
  }
  PageSize size() const {
    ATMO_CHECK(alive_, "FramePerm used after move/consume");
    return size_;
  }
  std::uint64_t bytes() const { return PageBytes(size()); }

  // True if [base, base+bytes) covers the byte at `addr`.
  bool Covers(PAddr addr) const { return addr >= base() && addr < base() + bytes(); }

  FramePerm CloneForVerification() const {
    ATMO_CHECK(alive_, "FramePerm used after move/consume");
    return FramePerm(base_, size_);
  }

 private:
  FramePerm(PAddr base, PageSize size) : base_(base), size_(size) {
    ATMO_CHECK(base % PageBytes(size) == 0, "FramePerm base not aligned to its size class");
  }

  PAddr base_;
  PageSize size_;
  bool alive_ = true;
};

class PhysMem {
 public:
  // Creates memory with `frames` 4 KiB frames. Backing storage is allocated
  // lazily on first touch; untouched frames read as zero.
  explicit PhysMem(std::uint64_t frames);

  std::uint64_t frame_count() const { return frame_count_; }
  std::uint64_t bytes() const { return frame_count_ * kPageSize4K; }

  bool Valid(PAddr addr) const { return addr < bytes(); }

  // CPU-side accesses: require a frame permission covering the address.
  std::uint64_t ReadU64(const FramePerm& perm, PAddr addr) const;
  void WriteU64(const FramePerm& perm, PAddr addr, std::uint64_t value);
  void ReadBytes(const FramePerm& perm, PAddr addr, void* dst, std::uint64_t len) const;
  void WriteBytes(const FramePerm& perm, PAddr addr, const void* src, std::uint64_t len);
  // Zeroes the whole page covered by `perm` (fresh allocation scrub).
  void ZeroPage(const FramePerm& perm);

  // Deep copy of the whole memory image (verification harness only).
  PhysMem CloneForVerification() const;
  // Pooled variant: deep-copies this image into `out`, reusing `out`'s
  // already-allocated frame blocks. Where this image has no backing block
  // (untouched frame, reads as zero) a reusable block in `out` is zeroed
  // instead of freed — observationally identical, allocation-free.
  void CloneForVerificationInto(PhysMem* out) const;
  // Direct span of one frame's backing store, touching it into existence —
  // the zero-copy borrow point for DMA-visible memory (DESIGN.md §14).
  // Hardware-side like HwRead/HwWrite (no software permission); the pointer
  // is stable until the PhysMem is destroyed.
  std::uint8_t* HwFrameSpan(std::uint64_t frame) {
    return reinterpret_cast<std::uint8_t*>(Touch(frame).data());
  }
  const std::uint8_t* HwFrameSpanIfTouched(std::uint64_t frame) const {
    const FrameData* data = Peek(frame);
    return data ? reinterpret_cast<const std::uint8_t*>(data->data()) : nullptr;
  }

  // Hardware-side accesses (MMU page walks, device DMA after IOMMU
  // translation). No software permission: hardware reads what is there.
  std::uint64_t HwReadU64(PAddr addr) const;
  void HwWriteU64(PAddr addr, std::uint64_t value);
  void HwReadBytes(PAddr addr, void* dst, std::uint64_t len) const;
  void HwWriteBytes(PAddr addr, const void* src, std::uint64_t len);

 private:
  static constexpr std::uint64_t kU64PerFrame = kPageSize4K / sizeof(std::uint64_t);
  using FrameData = std::array<std::uint64_t, kU64PerFrame>;

  FrameData& Touch(std::uint64_t frame);
  const FrameData* Peek(std::uint64_t frame) const;
  void CheckPermCovers(const FramePerm& perm, PAddr addr, std::uint64_t len) const;

  std::uint64_t frame_count_;
  std::vector<std::unique_ptr<FrameData>> frames_;
};

}  // namespace atmo

#endif  // ATMO_SRC_HW_PHYS_MEM_H_
