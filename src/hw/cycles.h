// Cycle counter for latency microbenchmarks (Table 3).
//
// Uses rdtsc with serialization on x86-64 and a steady-clock fallback
// elsewhere, matching how the paper reports IPC latency in cycles.

#ifndef ATMO_SRC_HW_CYCLES_H_
#define ATMO_SRC_HW_CYCLES_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace atmo {

inline std::uint64_t ReadCycles() {
#if defined(__x86_64__)
  unsigned int aux = 0;
  return __rdtscp(&aux);
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace atmo

#endif  // ATMO_SRC_HW_CYCLES_H_
