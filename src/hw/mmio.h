// MMIO cost model.
//
// Device doorbells (NIC tail registers, NVMe submission doorbells) are PCIe
// posted writes: cheap relative to a syscall but far from free (~100-300 ns
// on real hardware, uncacheable and ordered). The simulated devices are
// plain function calls, so without a cost model per-packet doorbells and
// per-batch doorbells would measure identically and the b1/b32 batching
// contrast of Figures 4-5 would vanish. MmioPostedWrite executes a short
// serialized dependency chain the compiler cannot elide — deterministic
// work standing in for the uncached write.

#ifndef ATMO_SRC_HW_MMIO_H_
#define ATMO_SRC_HW_MMIO_H_

#include <cstdint>

namespace atmo {

inline void MmioPostedWrite() {
  static volatile std::uint64_t chain[16] = {7, 3, 11, 5, 13, 2, 9, 6, 15, 1, 8, 4, 14, 10, 12, 0};
  std::uint64_t p = 0;
  for (int i = 0; i < 96; ++i) {
    p = chain[p & 15] + static_cast<std::uint64_t>(i & 1);
  }
  chain[15] = p & 1 ? 0 : chain[15];
}

}  // namespace atmo

#endif  // ATMO_SRC_HW_MMIO_H_
