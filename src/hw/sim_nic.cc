#include "src/hw/sim_nic.h"

#include <array>

#include "src/net/packet.h"
#include "src/vstd/check.h"

namespace atmo {

SimNic::SimNic(PhysMem* mem, IommuManager* iommu, DeviceId device_id)
    : mem_(mem), iommu_(iommu), device_id_(device_id) {}

void SimNic::ConfigureRxRing(VAddr ring_iova, std::uint32_t entries) {
  ATMO_CHECK(entries > 0 && (entries & (entries - 1)) == 0, "ring entries must be a power of 2");
  rx_ring_ = ring_iova;
  rx_entries_ = entries;
  rx_head_ = 0;
  rx_tail_ = 0;
}

void SimNic::ConfigureTxRing(VAddr ring_iova, std::uint32_t entries) {
  ATMO_CHECK(entries > 0 && (entries & (entries - 1)) == 0, "ring entries must be a power of 2");
  tx_ring_ = ring_iova;
  tx_entries_ = entries;
  tx_head_ = 0;
  tx_tail_ = 0;
}

bool SimNic::ReadDesc(VAddr ring, std::uint32_t index, std::uint64_t* iova,
                      std::uint64_t* meta) {
  VAddr desc = ring + index * kNicDescBytes;
  std::optional<PAddr> p0 = iommu_->Translate(device_id_, desc, /*write=*/false);
  std::optional<PAddr> p1 = iommu_->Translate(device_id_, desc + 8, /*write=*/false);
  if (!p0.has_value() || !p1.has_value()) {
    ++dma_faults_;
    return false;
  }
  *iova = mem_->HwReadU64(*p0);
  *meta = mem_->HwReadU64(*p1);
  return true;
}

bool SimNic::WriteDescMeta(VAddr ring, std::uint32_t index, std::uint64_t meta) {
  VAddr desc = ring + index * kNicDescBytes;
  std::optional<PAddr> p = iommu_->Translate(device_id_, desc + 8, /*write=*/true);
  if (!p.has_value()) {
    ++dma_faults_;
    return false;
  }
  mem_->HwWriteU64(*p, meta);
  return true;
}

std::uint32_t SimNic::DeliverRx(std::uint32_t budget) {
  if (rx_entries_ == 0 || !source_) {
    return 0;
  }
  std::uint32_t delivered = 0;
  std::array<std::uint8_t, kMaxFrameLen> frame;
  while (delivered < budget && rx_head_ != rx_tail_) {
    std::size_t len = source_(frame.data());
    if (len == 0) {
      break;  // no traffic pending
    }
    std::uint32_t index = rx_head_ % rx_entries_;
    std::uint64_t iova = 0;
    std::uint64_t meta = 0;
    if (!ReadDesc(rx_ring_, index, &iova, &meta)) {
      break;  // ring unreachable: stall
    }
    // DMA the frame into the posted buffer (page-contiguous by driver
    // contract; buffers are 2 KiB slots that never straddle a 4K page).
    std::optional<PAddr> buf = iommu_->Translate(device_id_, iova, /*write=*/true);
    if (!buf.has_value()) {
      ++dma_faults_;
      ++rx_head_;
      continue;  // drop frame, consume descriptor
    }
    mem_->HwWriteBytes(*buf, frame.data(), len);
    WriteDescMeta(rx_ring_, index, (len & kNicDescLenMask) | kNicDescDd);
    ++rx_head_;
    ++delivered;
    ++rx_delivered_;
  }
  return delivered;
}

std::uint32_t SimNic::ProcessTx(std::uint32_t budget) {
  if (tx_entries_ == 0) {
    return 0;
  }
  std::uint32_t sent = 0;
  std::array<std::uint8_t, kMaxFrameLen> frame;
  while (sent < budget && tx_head_ != tx_tail_) {
    std::uint32_t index = tx_head_ % tx_entries_;
    std::uint64_t iova = 0;
    std::uint64_t meta = 0;
    if (!ReadDesc(tx_ring_, index, &iova, &meta)) {
      break;
    }
    std::size_t len = meta & kNicDescLenMask;
    if (len > kMaxFrameLen) {
      len = kMaxFrameLen;
    }
    std::optional<PAddr> buf = iommu_->Translate(device_id_, iova, /*write=*/false);
    if (buf.has_value()) {
      mem_->HwReadBytes(*buf, frame.data(), len);
      if (sink_) {
        sink_(frame.data(), len);
      }
      ++tx_sent_;
    } else {
      ++dma_faults_;
    }
    WriteDescMeta(tx_ring_, index, meta | kNicDescDd);
    ++tx_head_;
    ++sent;
  }
  return sent;
}

}  // namespace atmo
