#include "src/hw/phys_mem.h"

#include <algorithm>
#include <cstring>

namespace atmo {

PhysMem::PhysMem(std::uint64_t frames) : frame_count_(frames), frames_(frames) {
  ATMO_CHECK(frames > 0, "PhysMem requires at least one frame");
}

PhysMem::FrameData& PhysMem::Touch(std::uint64_t frame) {
  ATMO_CHECK(frame < frame_count_, "PhysMem frame out of range");
  if (!frames_[frame]) {
    frames_[frame] = std::make_unique<FrameData>();
    frames_[frame]->fill(0);
  }
  return *frames_[frame];
}

const PhysMem::FrameData* PhysMem::Peek(std::uint64_t frame) const {
  ATMO_CHECK(frame < frame_count_, "PhysMem frame out of range");
  return frames_[frame].get();
}

void PhysMem::CheckPermCovers(const FramePerm& perm, PAddr addr, std::uint64_t len) const {
  ATMO_CHECK(len > 0 && addr + len > addr, "PhysMem access length overflow");
  ATMO_CHECK(perm.Covers(addr) && perm.Covers(addr + len - 1),
             "PhysMem access outside frame permission (spatial safety)");
  ATMO_CHECK(Valid(addr + len - 1), "PhysMem access beyond end of memory");
}

std::uint64_t PhysMem::ReadU64(const FramePerm& perm, PAddr addr) const {
  CheckPermCovers(perm, addr, sizeof(std::uint64_t));
  return HwReadU64(addr);
}

void PhysMem::WriteU64(const FramePerm& perm, PAddr addr, std::uint64_t value) {
  CheckPermCovers(perm, addr, sizeof(std::uint64_t));
  HwWriteU64(addr, value);
}

void PhysMem::ReadBytes(const FramePerm& perm, PAddr addr, void* dst, std::uint64_t len) const {
  CheckPermCovers(perm, addr, len);
  HwReadBytes(addr, dst, len);
}

void PhysMem::WriteBytes(const FramePerm& perm, PAddr addr, const void* src, std::uint64_t len) {
  CheckPermCovers(perm, addr, len);
  HwWriteBytes(addr, src, len);
}

void PhysMem::ZeroPage(const FramePerm& perm) {
  PAddr base = perm.base();
  std::uint64_t nframes = perm.bytes() / kPageSize4K;
  for (std::uint64_t i = 0; i < nframes; ++i) {
    std::uint64_t frame = base / kPageSize4K + i;
    ATMO_CHECK(frame < frame_count_, "ZeroPage frame out of range");
    if (frames_[frame]) {
      frames_[frame]->fill(0);
    }
  }
}

PhysMem PhysMem::CloneForVerification() const {
  PhysMem out(frame_count_);
  CloneForVerificationInto(&out);
  return out;
}

void PhysMem::CloneForVerificationInto(PhysMem* out) const {
  out->frame_count_ = frame_count_;
  // averif-lint: allow(hot-path-alloc) — resize is a no-op once the pooled clone reached live size; grows only with new frames
  out->frames_.resize(frame_count_);
  for (std::uint64_t frame = 0; frame < frame_count_; ++frame) {
    if (frames_[frame]) {
      if (out->frames_[frame]) {
        *out->frames_[frame] = *frames_[frame];
      } else {
        out->frames_[frame] = std::make_unique<FrameData>(*frames_[frame]);
      }
    } else if (out->frames_[frame]) {
      // Source frame untouched (reads as zero): zero the reusable block
      // rather than freeing it. A zeroed block and no block are
      // indistinguishable through every accessor.
      out->frames_[frame]->fill(0);
    }
  }
}

std::uint64_t PhysMem::HwReadU64(PAddr addr) const {
  ATMO_CHECK(addr % sizeof(std::uint64_t) == 0, "unaligned u64 read");
  ATMO_CHECK(Valid(addr + 7), "PhysMem read beyond end of memory");
  const FrameData* frame = Peek(addr / kPageSize4K);
  if (frame == nullptr) {
    return 0;
  }
  return (*frame)[(addr % kPageSize4K) / sizeof(std::uint64_t)];
}

void PhysMem::HwWriteU64(PAddr addr, std::uint64_t value) {
  ATMO_CHECK(addr % sizeof(std::uint64_t) == 0, "unaligned u64 write");
  ATMO_CHECK(Valid(addr + 7), "PhysMem write beyond end of memory");
  Touch(addr / kPageSize4K)[(addr % kPageSize4K) / sizeof(std::uint64_t)] = value;
}

void PhysMem::HwReadBytes(PAddr addr, void* dst, std::uint64_t len) const {
  ATMO_CHECK(len == 0 || Valid(addr + len - 1), "PhysMem read beyond end of memory");
  std::uint8_t* out = static_cast<std::uint8_t*>(dst);
  std::uint64_t done = 0;
  while (done < len) {
    std::uint64_t frame = (addr + done) / kPageSize4K;
    std::uint64_t off = (addr + done) % kPageSize4K;
    std::uint64_t chunk = std::min(len - done, kPageSize4K - off);
    const FrameData* data = Peek(frame);
    if (data == nullptr) {
      std::memset(out + done, 0, chunk);
    } else {
      std::memcpy(out + done, reinterpret_cast<const std::uint8_t*>(data->data()) + off, chunk);
    }
    done += chunk;
  }
}

void PhysMem::HwWriteBytes(PAddr addr, const void* src, std::uint64_t len) {
  ATMO_CHECK(len == 0 || Valid(addr + len - 1), "PhysMem write beyond end of memory");
  const std::uint8_t* in = static_cast<const std::uint8_t*>(src);
  std::uint64_t done = 0;
  while (done < len) {
    std::uint64_t frame = (addr + done) / kPageSize4K;
    std::uint64_t off = (addr + done) % kPageSize4K;
    std::uint64_t chunk = std::min(len - done, kPageSize4K - off);
    FrameData& data = Touch(frame);
    std::memcpy(reinterpret_cast<std::uint8_t*>(data.data()) + off, in + done, chunk);
    done += chunk;
  }
}

}  // namespace atmo
