#include "src/hw/sim_nvme.h"

#include <algorithm>
#include <cstring>

#include "src/vstd/check.h"

namespace atmo {

SimNvme::SimNvme(PhysMem* mem, IommuManager* iommu, DeviceId device_id,
                 std::uint64_t capacity_blocks)
    : mem_(mem), iommu_(iommu), device_id_(device_id), capacity_blocks_(capacity_blocks) {}

void SimNvme::ConfigureQueues(VAddr sq_iova, VAddr cq_iova, std::uint32_t entries) {
  ATMO_CHECK(entries > 0 && (entries & (entries - 1)) == 0,
             "queue entries must be a power of 2");
  sq_ = sq_iova;
  cq_ = cq_iova;
  entries_ = entries;
  sq_head_ = 0;
  sq_tail_ = 0;
  cq_tail_ = 0;
}

std::uint8_t* SimNvme::Block(std::uint64_t lba, bool create) {
  auto it = flash_.find(lba);
  if (it != flash_.end()) {
    return it->second.get();
  }
  if (!create) {
    return nullptr;
  }
  auto block = std::make_unique<std::uint8_t[]>(kNvmeBlockBytes);
  std::memset(block.get(), 0, kNvmeBlockBytes);
  std::uint8_t* raw = block.get();
  flash_.emplace(lba, std::move(block));
  return raw;
}

void SimNvme::PostCompletion(std::uint32_t cid, bool error) {
  std::uint32_t index = cq_tail_ % entries_;
  // Phase bit flips every pass over the CQ ring.
  std::uint64_t phase = ((cq_tail_ / entries_) & 1) ^ 1;
  std::uint64_t entry =
      cid | (error ? (1ull << 32) : 0) | (phase << 63);
  std::optional<PAddr> p = iommu_->Translate(device_id_, cq_ + index * kNvmeCqEntryBytes,
                                             /*write=*/true);
  if (!p.has_value()) {
    ++errors_;
    return;
  }
  mem_->HwWriteU64(*p, entry);
  ++cq_tail_;
}

std::uint32_t SimNvme::ProcessCommands(std::uint32_t budget) {
  if (entries_ == 0) {
    return 0;
  }
  std::uint32_t done = 0;
  while (done < budget && sq_head_ != sq_tail_) {
    std::uint32_t index = sq_head_ % entries_;
    VAddr entry_iova = sq_ + index * kNvmeSqEntryBytes;

    std::uint64_t words[4];
    bool fault = false;
    for (int w = 0; w < 4; ++w) {
      std::optional<PAddr> p =
          iommu_->Translate(device_id_, entry_iova + w * 8, /*write=*/false);
      if (!p.has_value()) {
        fault = true;
        break;
      }
      words[w] = mem_->HwReadU64(*p);
    }
    if (fault) {
      ++errors_;
      break;  // SQ unreachable: device stalls
    }
    std::uint8_t opcode = static_cast<std::uint8_t>(words[0] & 0xff);
    std::uint32_t cid = static_cast<std::uint32_t>(words[0] >> 32);
    std::uint64_t lba = words[1];
    std::uint64_t nblocks = words[2];
    VAddr buffer = words[3];
    ++sq_head_;
    ++done;

    if (lba + nblocks > capacity_blocks_ || nblocks == 0 ||
        (opcode != kNvmeOpRead && opcode != kNvmeOpWrite)) {
      ++errors_;
      PostCompletion(cid, /*error=*/true);
      continue;
    }

    bool ok = true;
    for (std::uint64_t b = 0; b < nblocks && ok; ++b) {
      VAddr dst = buffer + b * kNvmeBlockBytes;
      std::optional<PAddr> host =
          iommu_->Translate(device_id_, dst, /*write=*/opcode == kNvmeOpRead);
      if (!host.has_value()) {
        ok = false;
        break;
      }
      if (opcode == kNvmeOpRead) {
        const std::uint8_t* block = Block(lba + b, /*create=*/false);
        if (block == nullptr) {
          // Unwritten flash reads as zero.
          static const std::uint8_t kZeros[kNvmeBlockBytes] = {};
          mem_->HwWriteBytes(*host, kZeros, kNvmeBlockBytes);
        } else {
          mem_->HwWriteBytes(*host, block, kNvmeBlockBytes);
        }
      } else {
        std::uint8_t* block = Block(lba + b, /*create=*/true);
        mem_->HwReadBytes(*host, block, kNvmeBlockBytes);
      }
    }
    if (ok) {
      if (opcode == kNvmeOpRead) {
        ++reads_done_;
      } else {
        ++writes_done_;
      }
    } else {
      ++errors_;
    }
    PostCompletion(cid, /*error=*/!ok);
  }
  return done;
}

void SimNvme::BackdoorWrite(std::uint64_t lba, const void* data, std::uint64_t len) {
  const std::uint8_t* src = static_cast<const std::uint8_t*>(data);
  std::uint64_t done = 0;
  while (done < len) {
    std::uint64_t block_lba = lba + done / kNvmeBlockBytes;
    std::uint64_t off = done % kNvmeBlockBytes;
    std::uint64_t chunk = std::min(len - done, kNvmeBlockBytes - off);
    std::memcpy(Block(block_lba, true) + off, src + done, chunk);
    done += chunk;
  }
}

void SimNvme::BackdoorRead(std::uint64_t lba, void* data, std::uint64_t len) const {
  std::uint8_t* dst = static_cast<std::uint8_t*>(data);
  std::uint64_t done = 0;
  while (done < len) {
    std::uint64_t block_lba = lba + done / kNvmeBlockBytes;
    std::uint64_t off = done % kNvmeBlockBytes;
    std::uint64_t chunk = std::min(len - done, kNvmeBlockBytes - off);
    auto it = flash_.find(block_lba);
    if (it == flash_.end()) {
      std::memset(dst + done, 0, chunk);
    } else {
      std::memcpy(dst + done, it->second.get() + off, chunk);
    }
    done += chunk;
  }
}

}  // namespace atmo
