// MMU model — the hardware view of address translation.
//
// Walks real page-table bits in simulated physical memory exactly as an
// x86-64 MMU would: CR3 → PML4 → PDPT → PD → PT, honouring the PS bit for
// 2 MiB and 1 GiB superpages and intersecting access rights along the walk.
// The page-table refinement theorem (§6.2) is checked against this walker:
// for every entry of the abstract map, Walk() must resolve the same physical
// address and permission; for every address outside the map, Walk() must
// fault.

#ifndef ATMO_SRC_HW_MMU_H_
#define ATMO_SRC_HW_MMU_H_

#include <cstdint>
#include <optional>

#include "src/hw/phys_mem.h"
#include "src/vstd/types.h"

namespace atmo {

// x86-64-style page-table entry bit layout.
inline constexpr std::uint64_t kPtePresent = 1ull << 0;
inline constexpr std::uint64_t kPteWritable = 1ull << 1;
inline constexpr std::uint64_t kPteUser = 1ull << 2;
inline constexpr std::uint64_t kPtePageSize = 1ull << 7;  // PS: leaf at PDPT/PD
inline constexpr std::uint64_t kPteNx = 1ull << 63;
inline constexpr std::uint64_t kPteAddrMask = 0x000ffffffffff000ull;

// Composes an entry from a target physical address and permission bits.
std::uint64_t MakePte(PAddr target, MapEntryPerm perm, bool leaf_superpage);

// Extracts the permission bits of an entry.
MapEntryPerm PtePerm(std::uint64_t pte);

// Virtual-address index at each level (level 4 = PML4 ... level 1 = PT).
constexpr std::uint64_t VaIndex(VAddr va, int level) {
  return (va >> (12 + 9 * (level - 1))) & 0x1ff;
}

// Base virtual address composed from per-level indices (inverse of VaIndex).
constexpr VAddr IndexToVa(std::uint64_t l4, std::uint64_t l3, std::uint64_t l2,
                          std::uint64_t l1) {
  return (l4 << 39) | (l3 << 30) | (l2 << 21) | (l1 << 12);
}

// Result of a successful page walk.
struct WalkResult {
  PAddr paddr = 0;            // physical address of the byte `va` points at
  PAddr page_base = 0;        // base of the resolved page
  PageSize size = PageSize::k4K;
  MapEntryPerm perm;          // rights intersected over the walk

  friend bool operator==(const WalkResult&, const WalkResult&) = default;
};

class Mmu {
 public:
  explicit Mmu(const PhysMem* mem) : mem_(mem) {}

  // Resolves `va` through the table rooted at `cr3`. nullopt = page fault.
  std::optional<WalkResult> Walk(PAddr cr3, VAddr va) const;

  // Access check used by load/store/fetch emulation.
  enum class Access { kRead, kWrite, kExecute };
  bool Permits(PAddr cr3, VAddr va, Access access, bool user_mode) const;

 private:
  const PhysMem* mem_;
};

}  // namespace atmo

#endif  // ATMO_SRC_HW_MMU_H_
