// Kernel object layouts: containers, processes, threads, endpoints
// (Listing 2).
//
// Objects are pointer-centric, exactly as in the paper: links between
// objects are raw physical addresses; embedded collections use internal
// storage (StaticList) with reverse slot indices for O(1) unlinking. Each
// object occupies one 4 KiB page; permissions to all objects of a kind live
// in the ProcessManager's flat maps.
//
// Ghost fields (`path`, `subtree`, `owned_threads`) shadow the concrete
// structure so the paper's non-recursive tree invariants can be stated
// directly against the flat maps.

#ifndef ATMO_SRC_PROC_OBJECTS_H_
#define ATMO_SRC_PROC_OBJECTS_H_

#include <array>
#include <cstdint>

#include "src/ipc/message.h"
#include "src/vstd/spec_seq.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/static_list.h"
#include "src/vstd/types.h"

namespace atmo {

// Capacity limits: kernel objects are page-sized, so embedded collections
// are bounded (hierarchies themselves are unbounded — trees grow by
// allocating more objects).
inline constexpr std::size_t kMaxCtnrChildren = 64;
inline constexpr std::size_t kMaxCtnrProcs = 64;
inline constexpr std::size_t kMaxProcChildren = 64;
inline constexpr std::size_t kMaxProcThreads = 16;
inline constexpr std::size_t kMaxEdptDescriptors = 32;
inline constexpr std::size_t kMaxEdptWaiters = 32;

enum class ThreadState : std::uint8_t {
  kRunning = 0,
  kRunnable,
  kBlockedSend,   // queued on an endpoint waiting for a receiver
  kBlockedRecv,   // queued on an endpoint waiting for a sender
  kBlockedCall,   // call() sent, waiting for the reply
};

const char* ThreadStateName(ThreadState state);

// A container: a group of processes with guaranteed memory/CPU reservations
// (§3). Containers form a tree; quota is carved out of the parent's
// reservation at creation and returns on termination.
struct Container {
  CtnrPtr parent = kNullPtr;  // root has no parent
  StaticList<CtnrPtr, kMaxCtnrChildren> children;
  std::uint64_t depth = 0;
  std::uint32_t slot_in_parent = kStaticListNil;  // reverse index for O(1) unlink

  // Memory reservation, in 4 KiB pages. `mem_quota` is this container's own
  // budget (child budgets are subtracted at creation); `mem_used` counts
  // pages currently charged to this container.
  std::uint64_t mem_quota = 0;
  std::uint64_t mem_used = 0;
  // CPU reservation: bitmask of cores this container may run on.
  std::uint64_t cpu_mask = ~0ull;

  StaticList<ProcPtr, kMaxCtnrProcs> owned_procs;

  // Ghost state (Listing 2, lines 12-13).
  SpecSeq<CtnrPtr> path;      // direct and indirect parents, root first
  SpecSet<CtnrPtr> subtree;   // all reachable child containers
  SpecSet<ThrdPtr> owned_threads;  // threads of processes owned by this container
};

// A process: a unit of isolation with its own address space (held by the
// virtual-memory subsystem, keyed by ProcPtr). Processes form a tree inside
// their container.
struct Process {
  CtnrPtr owning_container = kNullPtr;
  ProcPtr parent = kNullPtr;  // kNullPtr for a container's initial process
  StaticList<ProcPtr, kMaxProcChildren> children;
  StaticList<ThrdPtr, kMaxProcThreads> threads;
  std::uint32_t slot_in_container = kStaticListNil;
  std::uint32_t slot_in_parent = kStaticListNil;
};

// A thread of execution.
struct Thread {
  ProcPtr owning_proc = kNullPtr;
  CtnrPtr owning_ctnr = kNullPtr;
  ThreadState state = ThreadState::kRunnable;
  std::uint32_t slot_in_proc = kStaticListNil;

  // Endpoint descriptor table (kNullPtr = empty slot).
  std::array<EdptPtr, kMaxEdptDescriptors> endpoints{};

  // IPC buffer: outbound payload while blocked sending / calling, inbound
  // payload after a successful receive (readable on resume).
  IpcPayload ipc_buf;
  // True when ipc_buf holds a delivered inbound message.
  bool has_inbound = false;
  // The endpoint this thread is queued on while blocked, and its queue slot
  // (reverse index for O(1) removal on kill).
  EdptPtr waiting_on = kNullPtr;
  std::uint32_t wait_slot = kStaticListNil;
  // For kBlockedCall: reply is delivered directly to this thread.
  ThrdPtr reply_to = kNullPtr;
};

enum class EdptQueueKind : std::uint8_t {
  kEmpty = 0,
  kSenders,    // queue holds blocked senders/callers
  kReceivers,  // queue holds blocked receivers
};

// An IPC endpoint. Threads referencing it via descriptors are counted in
// `rf_count`; the endpoint object is freed when the count drops to zero.
struct Endpoint {
  StaticList<ThrdPtr, kMaxEdptWaiters> queue;
  EdptQueueKind queue_kind = EdptQueueKind::kEmpty;
  std::uint64_t rf_count = 0;
  CtnrPtr owning_ctnr = kNullPtr;  // quota attribution
};

}  // namespace atmo

#endif  // ATMO_SRC_PROC_OBJECTS_H_
