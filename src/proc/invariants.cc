#include "src/proc/invariants.h"

#include <map>
#include <sstream>

namespace atmo {

namespace {

std::string Hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

}  // namespace

InvResult ContainerTreeWf(const ProcessManager& pm) {
  const PermissionMap<Container>& cntrs = pm.cntr_perms();
  CtnrPtr root = pm.root_container();

  if (!cntrs.contains(root)) {
    return InvResult::Fail("root container missing from flat map");
  }
  {
    const Container& r = cntrs.Get(root);
    if (r.parent != kNullPtr || r.depth != 0 || !r.path.empty()) {
      return InvResult::Fail("root container has a parent/path/depth");
    }
  }

  for (const auto& [c_ptr, perm] : cntrs) {
    const Container& c = perm.value();
    if (!c.children.LinksWf()) {
      return InvResult::Fail("children list links corrupt in " + Hex(c_ptr));
    }
    if (!c.owned_procs.LinksWf()) {
      return InvResult::Fail("owned_procs list links corrupt in " + Hex(c_ptr));
    }

    // Parent/child mutual consistency and ghost anchoring.
    if (c_ptr == root) {
      continue;
    }
    if (c.parent == kNullPtr || !cntrs.contains(c.parent)) {
      return InvResult::Fail("container " + Hex(c_ptr) + " has dangling parent");
    }
    const Container& parent = cntrs.Get(c.parent);
    if (c.slot_in_parent == kStaticListNil || parent.children.At(c.slot_in_parent) != c_ptr) {
      return InvResult::Fail("reverse child slot of " + Hex(c_ptr) + " is wrong");
    }
    if (c.depth != parent.depth + 1) {
      return InvResult::Fail("depth of " + Hex(c_ptr) + " is not parent depth + 1");
    }
    if (!(c.path == parent.path.push(c.parent))) {
      return InvResult::Fail("path of " + Hex(c_ptr) + " is not parent path + parent");
    }
    if (c.path.contains(c_ptr) || !c.path.NoDuplicates()) {
      return InvResult::Fail("cycle in path of " + Hex(c_ptr));
    }
    if (c.depth != c.path.len()) {
      return InvResult::Fail("depth of " + Hex(c_ptr) + " differs from path length");
    }
  }

  // resolve_path_wf (§4.1): for any node at depth d on the path of container
  // c, c's subpath from the root to depth d equals that node's path —
  // expressed directly against the flat map, no recursion.
  for (const auto& [c_ptr, perm] : cntrs) {
    const Container& c = perm.value();
    for (std::size_t d = 0; d < c.path.len(); ++d) {
      CtnrPtr ancestor = c.path[d];
      if (!cntrs.contains(ancestor)) {
        return InvResult::Fail("path of " + Hex(c_ptr) + " references dead container");
      }
      if (!(c.path.subrange(0, d) == cntrs.Get(ancestor).path)) {
        return InvResult::Fail("path prefix-closure violated at " + Hex(c_ptr));
      }
    }
  }

  // Bidirectional subtree invariant: c1 is in c2's subtree iff c2 is on
  // c1's path.
  for (const auto& [c1_ptr, perm1] : cntrs) {
    const Container& c1 = perm1.value();
    for (const auto& [c2_ptr, perm2] : cntrs) {
      const Container& c2 = perm2.value();
      bool in_subtree = c2.subtree.contains(c1_ptr);
      bool on_path = c1.path.contains(c2_ptr);
      if (in_subtree != on_path) {
        return InvResult::Fail("subtree/path disagreement between " + Hex(c1_ptr) + " and " +
                               Hex(c2_ptr));
      }
    }
    if (c1.subtree.contains(c1_ptr)) {
      return InvResult::Fail("container " + Hex(c1_ptr) + " is in its own subtree");
    }
    // Subtree members must be live containers (dangling ghost entries are
    // invisible to the bidirectional check above, which quantifies over the
    // domain only).
    bool members_live = c1.subtree.ForAll([&](CtnrPtr m) { return cntrs.contains(m); });
    if (!members_live) {
      return InvResult::Fail("subtree of " + Hex(c1_ptr) + " references a dead container");
    }
  }

  // Children membership implies parenthood (the quantified converse of the
  // per-child checks above).
  for (const auto& [c_ptr, perm] : cntrs) {
    for (CtnrPtr child : perm.value().children) {
      if (!cntrs.contains(child) || cntrs.Get(child).parent != c_ptr) {
        return InvResult::Fail("children list of " + Hex(c_ptr) + " holds a non-child");
      }
    }
  }
  return InvResult{};
}

InvResult ProcessTreeWf(const ProcessManager& pm) {
  const PermissionMap<Process>& procs = pm.proc_perms();
  const PermissionMap<Container>& cntrs = pm.cntr_perms();

  for (const auto& [p_ptr, perm] : procs) {
    const Process& p = perm.value();
    if (!p.children.LinksWf() || !p.threads.LinksWf()) {
      return InvResult::Fail("embedded list links corrupt in process " + Hex(p_ptr));
    }
    if (!cntrs.contains(p.owning_container)) {
      return InvResult::Fail("process " + Hex(p_ptr) + " owned by dead container");
    }
    const Container& ctnr = cntrs.Get(p.owning_container);
    if (p.slot_in_container == kStaticListNil ||
        ctnr.owned_procs.At(p.slot_in_container) != p_ptr) {
      return InvResult::Fail("container slot of process " + Hex(p_ptr) + " is wrong");
    }
    if (p.parent != kNullPtr) {
      if (!procs.contains(p.parent)) {
        return InvResult::Fail("process " + Hex(p_ptr) + " has dangling parent");
      }
      const Process& parent = procs.Get(p.parent);
      if (parent.owning_container != p.owning_container) {
        return InvResult::Fail("process " + Hex(p_ptr) + " crosses container boundary");
      }
      if (p.slot_in_parent == kStaticListNil ||
          parent.children.At(p.slot_in_parent) != p_ptr) {
        return InvResult::Fail("reverse child slot of process " + Hex(p_ptr) + " is wrong");
      }
    }
    // Acyclicity: walk the parent chain; it must terminate within |procs|.
    ProcPtr cur = p.parent;
    std::size_t steps = 0;
    while (cur != kNullPtr) {
      if (++steps > procs.size()) {
        return InvResult::Fail("cycle in process parent chain at " + Hex(p_ptr));
      }
      cur = procs.Get(cur).parent;
    }
    for (ProcPtr child : p.children) {
      if (!procs.contains(child) || procs.Get(child).parent != p_ptr) {
        return InvResult::Fail("children list of process " + Hex(p_ptr) + " holds a non-child");
      }
    }
  }

  // Every owned_procs member is a live process owned by that container.
  for (const auto& [c_ptr, perm] : cntrs) {
    for (ProcPtr proc : perm.value().owned_procs) {
      if (!procs.contains(proc) || procs.Get(proc).owning_container != c_ptr) {
        return InvResult::Fail("owned_procs of " + Hex(c_ptr) + " holds a foreign process");
      }
    }
  }
  return InvResult{};
}

InvResult ThreadsWf(const ProcessManager& pm) {
  const PermissionMap<Thread>& thrds = pm.thrd_perms();
  const PermissionMap<Process>& procs = pm.proc_perms();
  const PermissionMap<Container>& cntrs = pm.cntr_perms();
  const PermissionMap<Endpoint>& edpts = pm.edpt_perms();

  for (const auto& [t_ptr, perm] : thrds) {
    const Thread& t = perm.value();
    if (!procs.contains(t.owning_proc)) {
      return InvResult::Fail("thread " + Hex(t_ptr) + " owned by dead process");
    }
    const Process& proc = procs.Get(t.owning_proc);
    if (t.owning_ctnr != proc.owning_container) {
      return InvResult::Fail("thread " + Hex(t_ptr) + " container disagrees with its process");
    }
    if (t.slot_in_proc == kStaticListNil || proc.threads.At(t.slot_in_proc) != t_ptr) {
      return InvResult::Fail("process slot of thread " + Hex(t_ptr) + " is wrong");
    }
    if (!cntrs.Get(t.owning_ctnr).owned_threads.contains(t_ptr)) {
      return InvResult::Fail("thread " + Hex(t_ptr) + " missing from container ghost set");
    }

    // Descriptor table references live endpoints.
    for (EdptPtr edpt : t.endpoints) {
      if (edpt != kNullPtr && !edpts.contains(edpt)) {
        return InvResult::Fail("thread " + Hex(t_ptr) + " holds dangling endpoint descriptor");
      }
    }

    // State/location exclusivity.
    switch (t.state) {
      case ThreadState::kRunning:
        if (pm.current() != t_ptr) {
          return InvResult::Fail("running thread " + Hex(t_ptr) + " is not current");
        }
        break;
      case ThreadState::kRunnable: {
        std::size_t count = 0;
        for (ThrdPtr q : pm.run_queue()) {
          if (q == t_ptr) {
            ++count;
          }
        }
        if (count != 1) {
          return InvResult::Fail("runnable thread " + Hex(t_ptr) + " run-queue count != 1");
        }
        break;
      }
      case ThreadState::kBlockedSend:
      case ThreadState::kBlockedRecv:
      case ThreadState::kBlockedCall: {
        if (t.state == ThreadState::kBlockedCall && t.waiting_on == kNullPtr) {
          // Rendezvous complete: awaiting a direct reply, parked off-queue.
          if (t.wait_slot != kStaticListNil) {
            return InvResult::Fail("reply-waiting thread " + Hex(t_ptr) + " has a queue slot");
          }
          break;
        }
        if (t.waiting_on == kNullPtr || !edpts.contains(t.waiting_on)) {
          return InvResult::Fail("blocked thread " + Hex(t_ptr) + " waits on dead endpoint");
        }
        const Endpoint& e = edpts.Get(t.waiting_on);
        if (t.wait_slot == kStaticListNil || e.queue.At(t.wait_slot) != t_ptr) {
          return InvResult::Fail("wait-queue reverse index of " + Hex(t_ptr) + " is wrong");
        }
        EdptQueueKind expect = t.state == ThreadState::kBlockedRecv ? EdptQueueKind::kReceivers
                                                                    : EdptQueueKind::kSenders;
        if (e.queue_kind != expect) {
          return InvResult::Fail("queue kind mismatch for blocked thread " + Hex(t_ptr));
        }
        break;
      }
    }
  }

  // Converse of the ghost set: owned_threads only holds live owned threads.
  for (const auto& [c_ptr, perm] : cntrs) {
    bool ok = perm.value().owned_threads.ForAll([&](ThrdPtr t_ptr) {
      return thrds.contains(t_ptr) && thrds.Get(t_ptr).owning_ctnr == c_ptr;
    });
    if (!ok) {
      return InvResult::Fail("owned_threads ghost set of " + Hex(c_ptr) + " holds a stranger");
    }
  }
  return InvResult{};
}

InvResult EndpointsWf(const ProcessManager& pm) {
  const PermissionMap<Thread>& thrds = pm.thrd_perms();
  const PermissionMap<Endpoint>& edpts = pm.edpt_perms();
  const PermissionMap<Container>& cntrs = pm.cntr_perms();

  // Reference counts: tally descriptor references across all threads.
  std::map<EdptPtr, std::uint64_t> refs;
  for (const auto& [t_ptr, perm] : thrds) {
    for (EdptPtr edpt : perm.value().endpoints) {
      if (edpt != kNullPtr) {
        ++refs[edpt];
      }
    }
  }

  for (const auto& [e_ptr, perm] : edpts) {
    const Endpoint& e = perm.value();
    if (!e.queue.LinksWf()) {
      return InvResult::Fail("endpoint queue links corrupt in " + Hex(e_ptr));
    }
    std::uint64_t expected = refs.count(e_ptr) ? refs[e_ptr] : 0;
    if (e.rf_count != expected) {
      return InvResult::Fail("rf_count of " + Hex(e_ptr) + " disagrees with descriptors");
    }
    if (e.rf_count == 0) {
      return InvResult::Fail("endpoint " + Hex(e_ptr) + " alive with zero references");
    }
    if (!cntrs.contains(e.owning_ctnr)) {
      return InvResult::Fail("endpoint " + Hex(e_ptr) + " owned by dead container");
    }
    if (e.queue.empty() != (e.queue_kind == EdptQueueKind::kEmpty)) {
      return InvResult::Fail("queue kind of " + Hex(e_ptr) + " disagrees with emptiness");
    }
    for (ThrdPtr t_ptr : e.queue) {
      if (!thrds.contains(t_ptr)) {
        return InvResult::Fail("endpoint " + Hex(e_ptr) + " queues a dead thread");
      }
      const Thread& t = thrds.Get(t_ptr);
      if (t.waiting_on != e_ptr) {
        return InvResult::Fail("queued thread " + Hex(t_ptr) + " does not wait on " +
                               Hex(e_ptr));
      }
    }
  }
  // No dangling references (a descriptor to a freed endpoint).
  for (const auto& [e_ptr, count] : refs) {
    if (!edpts.contains(e_ptr)) {
      return InvResult::Fail("descriptor references freed endpoint " + Hex(e_ptr));
    }
  }
  return InvResult{};
}

InvResult SchedulerWf(const ProcessManager& pm) {
  const PermissionMap<Thread>& thrds = pm.thrd_perms();
  if (pm.current() != kNullPtr) {
    if (!thrds.contains(pm.current()) ||
        thrds.Get(pm.current()).state != ThreadState::kRunning) {
      return InvResult::Fail("current thread is not running");
    }
  }
  std::map<ThrdPtr, int> seen;
  for (ThrdPtr t_ptr : pm.run_queue()) {
    if (!thrds.contains(t_ptr)) {
      return InvResult::Fail("run queue holds dead thread " + Hex(t_ptr));
    }
    if (thrds.Get(t_ptr).state != ThreadState::kRunnable) {
      return InvResult::Fail("run queue holds non-runnable thread " + Hex(t_ptr));
    }
    if (++seen[t_ptr] > 1) {
      return InvResult::Fail("run queue holds duplicate thread " + Hex(t_ptr));
    }
  }
  return InvResult{};
}

InvResult QuotaWf(const ProcessManager& pm, const PageAllocator& alloc) {
  const PermissionMap<Container>& cntrs = pm.cntr_perms();

  // Tally allocator attribution: 4K-frame counts per owner.
  std::map<CtnrPtr, std::uint64_t> charged;
  for (PagePtr page : alloc.AllocatedPages()) {
    charged[alloc.OwnerOf(page)] += PageFrames4K(alloc.SizeClassOf(page));
  }
  for (PagePtr page : alloc.MappedPages()) {
    charged[alloc.OwnerOf(page)] += PageFrames4K(alloc.SizeClassOf(page));
  }

  std::uint64_t total_quota = 0;
  for (const auto& [c_ptr, perm] : cntrs) {
    const Container& c = perm.value();
    if (c.mem_used > c.mem_quota) {
      return InvResult::Fail("container " + Hex(c_ptr) + " exceeds its memory quota");
    }
    std::uint64_t owned = charged.count(c_ptr) ? charged[c_ptr] : 0;
    if (owned != c.mem_used) {
      return InvResult::Fail("container " + Hex(c_ptr) + " mem_used (" +
                             std::to_string(c.mem_used) + ") != allocator attribution (" +
                             std::to_string(owned) + ")");
    }
    total_quota += c.mem_quota;
  }

  // Conservation: quotas across alive containers sum to the boot
  // reservation (carving moves quota, never creates it).
  if (total_quota != pm.initial_quota()) {
    return InvResult::Fail("total container quota (" + std::to_string(total_quota) +
                           ") differs from boot reservation (" +
                           std::to_string(pm.initial_quota()) + ")");
  }

  // No page attributed to a dead container.
  for (const auto& [owner, frames] : charged) {
    if (owner != kNullPtr && !cntrs.contains(owner)) {
      return InvResult::Fail("pages attributed to dead container " + Hex(owner));
    }
  }
  return InvResult{};
}

InvResult ProcessManagerWf(const ProcessManager& pm) {
  for (auto* check : {&ContainerTreeWf, &ProcessTreeWf, &ThreadsWf, &EndpointsWf,
                      &SchedulerWf}) {
    InvResult result = (*check)(pm);
    if (!result.ok) {
      return result;
    }
  }
  return InvResult{};
}

}  // namespace atmo
