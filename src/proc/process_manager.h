// Process manager: containers, processes, threads, endpoints, scheduler
// (Listing 2).
//
// The subsystem owns the permissions to *all* kernel objects it manages in
// flat maps — the paper's central design choice. Object creation allocates a
// 4 KiB page (charged against the owning container's quota), places the
// object, and inserts its permission into the flat map; teardown reverses
// the exchange and frees the page. All structural ghost state (container
// `path`/`subtree`, per-container thread sets) is maintained eagerly so the
// non-recursive tree invariants (src/proc/invariants.h) can be checked
// against the flat maps at any time.

#ifndef ATMO_SRC_PROC_PROCESS_MANAGER_H_
#define ATMO_SRC_PROC_PROCESS_MANAGER_H_

#include <deque>
#include <optional>

#include "src/pmem/page_allocator.h"
#include "src/proc/objects.h"
#include "src/vstd/dirty_set.h"
#include "src/vstd/permission_map.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

enum class ProcError {
  kOk = 0,
  kNoMemory,       // page allocator exhausted
  kQuotaExceeded,  // container memory reservation exhausted
  kCapacity,       // embedded collection full (children/threads/descriptors)
  kInvalid,        // bad handle / slot / state
};

const char* ProcErrorName(ProcError error);

template <typename T>
struct PmResult {
  ProcError error = ProcError::kOk;
  T value{};

  bool ok() const { return error == ProcError::kOk; }
  static PmResult Ok(T v) { return PmResult{ProcError::kOk, v}; }
  static PmResult Err(ProcError e) { return PmResult{e, T{}}; }
};

class ProcessManager {
 public:
  // Boot: creates the root container owning the machine's full memory
  // reservation (`root_quota` pages) and all CPUs.
  static std::optional<ProcessManager> Boot(PageAllocator* alloc, std::uint64_t root_quota);

  ProcessManager(ProcessManager&&) noexcept = default;
  ProcessManager& operator=(ProcessManager&&) noexcept = default;

  CtnrPtr root_container() const { return root_container_; }
  std::uint64_t initial_quota() const { return initial_quota_; }

  // --- Object accessors (verification failures on dangling handles) ---
  bool ContainerExists(CtnrPtr c) const { return cntr_perms_.contains(c); }
  bool ProcessExists(ProcPtr p) const { return proc_perms_.contains(p); }
  bool ThreadExists(ThrdPtr t) const { return thrd_perms_.contains(t); }
  bool EndpointExists(EdptPtr e) const { return edpt_perms_.contains(e); }
  const Container& GetContainer(CtnrPtr c) const { return cntr_perms_.Get(c); }
  const Process& GetProcess(ProcPtr p) const { return proc_perms_.Get(p); }
  const Thread& GetThread(ThrdPtr t) const { return thrd_perms_.Get(t); }
  const Endpoint& GetEndpoint(EdptPtr e) const { return edpt_perms_.Get(e); }

  // --- Quota accounting ---
  // Charges `pages` 4 KiB pages to `c`; false (no change) if over quota.
  bool ChargePages(CtnrPtr c, std::uint64_t pages);
  void UnchargePages(CtnrPtr c, std::uint64_t pages);

  // --- Object lifecycle ---
  // Creates a child container, carving `quota` pages and `cpu_mask` out of
  // the parent's reservation. The container's own metadata page is charged
  // to the child.
  PmResult<CtnrPtr> NewContainer(PageAllocator* alloc, CtnrPtr parent, std::uint64_t quota,
                                 std::uint64_t cpu_mask);
  // Creates a process in `ctnr`; `parent` is kNullPtr for the container's
  // initial process, otherwise a process of the same container.
  PmResult<ProcPtr> NewProcess(PageAllocator* alloc, CtnrPtr ctnr, ProcPtr parent);
  // Creates a thread in `proc`, initially runnable (enqueued).
  PmResult<ThrdPtr> NewThread(PageAllocator* alloc, ProcPtr proc);
  // Creates an endpoint and binds it into `thrd`'s descriptor slot `idx`.
  PmResult<EdptPtr> NewEndpoint(PageAllocator* alloc, ThrdPtr thrd, EdptIdx idx);

  // Binds an existing endpoint into a descriptor slot (rf_count++).
  ProcError BindEndpoint(ThrdPtr thrd, EdptIdx idx, EdptPtr edpt);
  // Clears a descriptor slot (rf_count--). When the count reaches zero the
  // endpoint object is destroyed and its page freed.
  ProcError UnbindEndpoint(PageAllocator* alloc, ThrdPtr thrd, EdptIdx idx);

  // Destroys a thread: dequeues it from scheduler/endpoint queues, unbinds
  // all descriptors, unlinks from its process, frees its page.
  void RemoveThread(PageAllocator* alloc, ThrdPtr thrd);
  // Destroys a process with no threads and no child processes.
  void RemoveProcess(PageAllocator* alloc, ProcPtr proc);
  // Destroys a container with no processes and no child containers. Its
  // remaining quota returns to the parent (resource harvesting, §3).
  void RemoveContainer(PageAllocator* alloc, CtnrPtr ctnr);

  // Moves `pages` of charged usage from one container to another without a
  // quota check (container-kill harvesting; transient over-quota on the
  // destination is resolved when the dying child's quota returns).
  void TransferCharge(CtnrPtr from, CtnrPtr to, std::uint64_t pages);

  // --- Scheduler (round-robin, single modelled CPU under the big lock) ---
  ThrdPtr current() const { return current_; }
  // Puts a specific runnable thread on the CPU (syscall dispatch).
  void DispatchSpecific(ThrdPtr thrd);
  // Preempts the current thread to the run-queue tail.
  void PreemptCurrent();
  // The current thread blocks awaiting a direct reply (call() rendezvous
  // complete): state kBlockedCall, not queued on any endpoint.
  void BlockCurrentForReply();
  // Makes a blocked/new thread runnable (enqueues it).
  void MakeRunnable(ThrdPtr thrd);
  // current yields: goes to the tail, next head runs.
  void Yield();
  // Picks the next runnable thread when there is no current (boot, or the
  // current thread just blocked/exited). Returns kNullPtr if idle.
  ThrdPtr ScheduleNext();

  // --- Blocking on endpoints (used by the IPC layer) ---
  // Blocks the current thread on `edpt` with the given blocked state.
  void BlockCurrentOn(EdptPtr edpt, ThreadState blocked_state);
  // Pops the head waiter (queue must be non-empty). Does not change the
  // thread's state — the IPC layer completes the transfer and wakes it.
  ThrdPtr PopWaiter(EdptPtr edpt);
  // O(1) removal of a specific waiter (thread kill while blocked).
  void RemoveWaiter(EdptPtr edpt, ThrdPtr thrd);

  // Mutable object access for the IPC layer and the kernel facade.
  Thread& MutableThread(ThrdPtr t) { return thrd_perms_.GetMut(t); }
  Endpoint& MutableEndpoint(EdptPtr e) { return edpt_perms_.GetMut(e); }
  Container& MutableContainer(CtnrPtr c) { return cntr_perms_.GetMut(c); }
  Process& MutableProcess(ProcPtr p) { return proc_perms_.GetMut(p); }

  // --- Ghost / spec access ---
  const PermissionMap<Container>& cntr_perms() const { return cntr_perms_; }
  const PermissionMap<Process>& proc_perms() const { return proc_perms_; }
  const PermissionMap<Thread>& thrd_perms() const { return thrd_perms_; }
  const PermissionMap<Endpoint>& edpt_perms() const { return edpt_perms_; }
  const std::deque<ThrdPtr>& run_queue() const { return run_queue_; }

  // All threads owned by `c` or any container in its subtree — the paper's
  // T_A construction, non-recursive thanks to the subtree ghost set.
  SpecSet<ThrdPtr> SubtreeThreads(CtnrPtr c) const;
  // All processes owned by `c` or its subtree (P_A).
  SpecSet<ProcPtr> SubtreeProcs(CtnrPtr c) const;
  // All containers in `c`'s subtree including `c` itself (C_A).
  SpecSet<CtnrPtr> SubtreeContainers(CtnrPtr c) const;

  // Pages backing the objects this subsystem owns (§4.2 page_closure).
  SpecSet<PagePtr> PageClosure() const;

  // Drains this subsystem's mutation logs (object permissions + scheduler)
  // into `out` for incremental abstraction.
  void DrainDirty(DirtySet* out);

  ProcessManager CloneForVerification() const;
  // Pooled clone: overwrite `out` in place, reusing its permission-map
  // nodes and queue storage (DESIGN.md §14).
  void CloneForVerificationInto(ProcessManager* out) const;

  // Creates an empty manager; only Boot() produces a usable one. Public so
  // aggregates (Kernel) can default-construct before boot.
  ProcessManager() = default;

 private:
  // Allocates + charges one object page; refunds on failure.
  std::optional<PageAlloc> AllocObjectPage(PageAllocator* alloc, CtnrPtr charge_to,
                                           ProcError* error);
  void FreeObjectPage(PageAllocator* alloc, CtnrPtr charged_to, PagePtr page, FramePerm perm);
  void DequeueRunnable(ThrdPtr thrd);

  CtnrPtr root_container_ = kNullPtr;
  std::uint64_t initial_quota_ = 0;
  PermissionMap<Container> cntr_perms_;
  PermissionMap<Process> proc_perms_;
  PermissionMap<Thread> thrd_perms_;
  PermissionMap<Endpoint> edpt_perms_;

  std::deque<ThrdPtr> run_queue_;
  ThrdPtr current_ = kNullPtr;
  // Set whenever run_queue_ or current_ changes (incremental abstraction).
  bool sched_dirty_ = false;
};

}  // namespace atmo

#endif  // ATMO_SRC_PROC_PROCESS_MANAGER_H_
