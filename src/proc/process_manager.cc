#include "src/proc/process_manager.h"

#include <algorithm>

#include "src/pmem/object_alloc.h"
#include "src/vstd/check.h"

namespace atmo {

const char* ProcErrorName(ProcError error) {
  switch (error) {
    case ProcError::kOk:
      return "ok";
    case ProcError::kNoMemory:
      return "no-memory";
    case ProcError::kQuotaExceeded:
      return "quota-exceeded";
    case ProcError::kCapacity:
      return "capacity";
    case ProcError::kInvalid:
      return "invalid";
  }
  return "?";
}

const char* ThreadStateName(ThreadState state) {
  switch (state) {
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kRunnable:
      return "runnable";
    case ThreadState::kBlockedSend:
      return "blocked-send";
    case ThreadState::kBlockedRecv:
      return "blocked-recv";
    case ThreadState::kBlockedCall:
      return "blocked-call";
  }
  return "?";
}

std::optional<ProcessManager> ProcessManager::Boot(PageAllocator* alloc,
                                                   std::uint64_t root_quota) {
  ATMO_CHECK(root_quota >= 1, "root container needs at least one page of quota");
  std::optional<PageAlloc> page = alloc->AllocPage4K(kNullPtr);
  if (!page.has_value()) {
    return std::nullopt;
  }

  ProcessManager pm;
  Container root;
  root.parent = kNullPtr;
  root.depth = 0;
  root.mem_quota = root_quota;
  root.mem_used = 1;  // the root container's own metadata page
  root.cpu_mask = ~0ull;

  PlacedObject<Container> placed = PlaceObject(std::move(page->perm), std::move(root));
  pm.root_container_ = page->ptr;
  pm.initial_quota_ = root_quota;
  pm.cntr_perms_.TrackedInsert(std::move(placed.perm));
  alloc->SetOwner(page->ptr, page->ptr);
  return pm;
}

bool ProcessManager::ChargePages(CtnrPtr c, std::uint64_t pages) {
  Container& ctnr = cntr_perms_.GetMut(c);
  if (ctnr.mem_used + pages > ctnr.mem_quota) {
    return false;
  }
  ctnr.mem_used += pages;
  return true;
}

void ProcessManager::UnchargePages(CtnrPtr c, std::uint64_t pages) {
  Container& ctnr = cntr_perms_.GetMut(c);
  ATMO_CHECK(ctnr.mem_used >= pages, "container memory accounting underflow");
  ctnr.mem_used -= pages;
}

std::optional<PageAlloc> ProcessManager::AllocObjectPage(PageAllocator* alloc,
                                                         CtnrPtr charge_to, ProcError* error) {
  if (!ChargePages(charge_to, 1)) {
    *error = ProcError::kQuotaExceeded;
    return std::nullopt;
  }
  std::optional<PageAlloc> page = alloc->AllocPage4K(charge_to);
  if (!page.has_value()) {
    UnchargePages(charge_to, 1);
    *error = ProcError::kNoMemory;
    return std::nullopt;
  }
  *error = ProcError::kOk;
  return page;
}

void ProcessManager::FreeObjectPage(PageAllocator* alloc, CtnrPtr charged_to, PagePtr page,
                                    FramePerm perm) {
  alloc->FreePage(page, std::move(perm));
  if (charged_to != kNullPtr && cntr_perms_.contains(charged_to)) {
    UnchargePages(charged_to, 1);
  }
}

// ---------------------------------------------------------------------------
// Object lifecycle
// ---------------------------------------------------------------------------

PmResult<CtnrPtr> ProcessManager::NewContainer(PageAllocator* alloc, CtnrPtr parent,
                                               std::uint64_t quota, std::uint64_t cpu_mask) {
  if (!cntr_perms_.contains(parent) || quota < 1 || cpu_mask == 0) {
    return PmResult<CtnrPtr>::Err(ProcError::kInvalid);
  }
  {
    const Container& p = cntr_perms_.Get(parent);
    if (p.children.full()) {
      return PmResult<CtnrPtr>::Err(ProcError::kCapacity);
    }
    if ((cpu_mask & ~p.cpu_mask) != 0) {
      return PmResult<CtnrPtr>::Err(ProcError::kInvalid);
    }
    // The parent passes a subset of its own reservation: it must retain
    // enough headroom for pages it has already charged.
    if (p.mem_quota < quota || p.mem_quota - quota < p.mem_used) {
      return PmResult<CtnrPtr>::Err(ProcError::kQuotaExceeded);
    }
  }

  std::optional<PageAlloc> page = alloc->AllocPage4K(kNullPtr);
  if (!page.has_value()) {
    return PmResult<CtnrPtr>::Err(ProcError::kNoMemory);
  }
  CtnrPtr child_ptr = page->ptr;

  Container child;
  child.parent = parent;
  child.mem_quota = quota;
  child.mem_used = 1;  // its own metadata page, charged against its fresh quota
  child.cpu_mask = cpu_mask;

  {
    Container& p = cntr_perms_.GetMut(parent);
    p.mem_quota -= quota;
    child.slot_in_parent = p.children.PushBack(child_ptr);
    child.depth = p.depth + 1;
    child.path = p.path.push(parent);
  }

  // new_container_ensures: the subtree of the new container's direct and
  // indirect parents is extended by the child (Listing 3, lines 15-19).
  for (CtnrPtr ancestor : child.path) {
    cntr_perms_.GetMut(ancestor).subtree.add(child_ptr);
  }

  PlacedObject<Container> placed = PlaceObject(std::move(page->perm), std::move(child));
  cntr_perms_.TrackedInsert(std::move(placed.perm));
  alloc->SetOwner(child_ptr, child_ptr);
  return PmResult<CtnrPtr>::Ok(child_ptr);
}

PmResult<ProcPtr> ProcessManager::NewProcess(PageAllocator* alloc, CtnrPtr ctnr,
                                             ProcPtr parent) {
  if (!cntr_perms_.contains(ctnr)) {
    return PmResult<ProcPtr>::Err(ProcError::kInvalid);
  }
  if (parent != kNullPtr) {
    if (!proc_perms_.contains(parent) || proc_perms_.Get(parent).owning_container != ctnr) {
      return PmResult<ProcPtr>::Err(ProcError::kInvalid);
    }
    if (proc_perms_.Get(parent).children.full()) {
      return PmResult<ProcPtr>::Err(ProcError::kCapacity);
    }
  }
  if (cntr_perms_.Get(ctnr).owned_procs.full()) {
    return PmResult<ProcPtr>::Err(ProcError::kCapacity);
  }

  ProcError error;
  std::optional<PageAlloc> page = AllocObjectPage(alloc, ctnr, &error);
  if (!page.has_value()) {
    return PmResult<ProcPtr>::Err(error);
  }
  ProcPtr proc_ptr = page->ptr;

  Process proc;
  proc.owning_container = ctnr;
  proc.parent = parent;
  proc.slot_in_container = cntr_perms_.GetMut(ctnr).owned_procs.PushBack(proc_ptr);
  if (parent != kNullPtr) {
    proc.slot_in_parent = proc_perms_.GetMut(parent).children.PushBack(proc_ptr);
  }

  PlacedObject<Process> placed = PlaceObject(std::move(page->perm), std::move(proc));
  proc_perms_.TrackedInsert(std::move(placed.perm));
  return PmResult<ProcPtr>::Ok(proc_ptr);
}

PmResult<ThrdPtr> ProcessManager::NewThread(PageAllocator* alloc, ProcPtr proc) {
  if (!proc_perms_.contains(proc)) {
    return PmResult<ThrdPtr>::Err(ProcError::kInvalid);
  }
  if (proc_perms_.Get(proc).threads.full()) {
    return PmResult<ThrdPtr>::Err(ProcError::kCapacity);
  }
  CtnrPtr ctnr = proc_perms_.Get(proc).owning_container;

  ProcError error;
  std::optional<PageAlloc> page = AllocObjectPage(alloc, ctnr, &error);
  if (!page.has_value()) {
    return PmResult<ThrdPtr>::Err(error);
  }
  ThrdPtr thrd_ptr = page->ptr;

  Thread thrd;
  thrd.owning_proc = proc;
  thrd.owning_ctnr = ctnr;
  thrd.state = ThreadState::kRunnable;
  thrd.slot_in_proc = proc_perms_.GetMut(proc).threads.PushBack(thrd_ptr);
  cntr_perms_.GetMut(ctnr).owned_threads.add(thrd_ptr);

  PlacedObject<Thread> placed = PlaceObject(std::move(page->perm), std::move(thrd));
  thrd_perms_.TrackedInsert(std::move(placed.perm));
  // averif-lint: allow(hot-path-alloc) — thread spawn is a cold control-plane op
  run_queue_.push_back(thrd_ptr);
  sched_dirty_ = true;
  return PmResult<ThrdPtr>::Ok(thrd_ptr);
}

PmResult<EdptPtr> ProcessManager::NewEndpoint(PageAllocator* alloc, ThrdPtr thrd, EdptIdx idx) {
  if (!thrd_perms_.contains(thrd) || idx >= kMaxEdptDescriptors) {
    return PmResult<EdptPtr>::Err(ProcError::kInvalid);
  }
  if (thrd_perms_.Get(thrd).endpoints[idx] != kNullPtr) {
    return PmResult<EdptPtr>::Err(ProcError::kInvalid);
  }
  CtnrPtr ctnr = thrd_perms_.Get(thrd).owning_ctnr;

  ProcError error;
  std::optional<PageAlloc> page = AllocObjectPage(alloc, ctnr, &error);
  if (!page.has_value()) {
    return PmResult<EdptPtr>::Err(error);
  }
  EdptPtr edpt_ptr = page->ptr;

  Endpoint edpt;
  edpt.rf_count = 1;
  edpt.owning_ctnr = ctnr;

  PlacedObject<Endpoint> placed = PlaceObject(std::move(page->perm), std::move(edpt));
  edpt_perms_.TrackedInsert(std::move(placed.perm));
  thrd_perms_.GetMut(thrd).endpoints[idx] = edpt_ptr;
  return PmResult<EdptPtr>::Ok(edpt_ptr);
}

ProcError ProcessManager::BindEndpoint(ThrdPtr thrd, EdptIdx idx, EdptPtr edpt) {
  if (!thrd_perms_.contains(thrd) || !edpt_perms_.contains(edpt) ||
      idx >= kMaxEdptDescriptors) {
    return ProcError::kInvalid;
  }
  Thread& t = thrd_perms_.GetMut(thrd);
  if (t.endpoints[idx] != kNullPtr) {
    return ProcError::kInvalid;
  }
  t.endpoints[idx] = edpt;
  ++edpt_perms_.GetMut(edpt).rf_count;
  return ProcError::kOk;
}

ProcError ProcessManager::UnbindEndpoint(PageAllocator* alloc, ThrdPtr thrd, EdptIdx idx) {
  if (!thrd_perms_.contains(thrd) || idx >= kMaxEdptDescriptors) {
    return ProcError::kInvalid;
  }
  Thread& t = thrd_perms_.GetMut(thrd);
  EdptPtr edpt = t.endpoints[idx];
  if (edpt == kNullPtr) {
    return ProcError::kInvalid;
  }
  t.endpoints[idx] = kNullPtr;

  Endpoint& e = edpt_perms_.GetMut(edpt);
  ATMO_CHECK(e.rf_count > 0, "endpoint reference count underflow");
  if (--e.rf_count == 0) {
    ATMO_CHECK(e.queue.empty(), "endpoint with waiters lost its last reference");
    CtnrPtr charged = e.owning_ctnr;
    FramePerm frame = UnplaceObject(edpt_perms_.TrackedRemove(edpt));
    FreeObjectPage(alloc, charged, edpt, std::move(frame));
  }
  return ProcError::kOk;
}

void ProcessManager::RemoveThread(PageAllocator* alloc, ThrdPtr thrd) {
  ATMO_CHECK(thrd_perms_.contains(thrd), "RemoveThread of unknown thread");

  // Detach from wherever the thread is parked.
  switch (thrd_perms_.Get(thrd).state) {
    case ThreadState::kRunnable:
      DequeueRunnable(thrd);
      break;
    case ThreadState::kRunning:
      ATMO_CHECK(current_ == thrd, "running thread is not the current thread");
      current_ = kNullPtr;
      sched_dirty_ = true;
      break;
    case ThreadState::kBlockedSend:
    case ThreadState::kBlockedRecv:
    case ThreadState::kBlockedCall: {
      EdptPtr waiting_on = thrd_perms_.Get(thrd).waiting_on;
      if (waiting_on != kNullPtr) {
        RemoveWaiter(waiting_on, thrd);
      }
      break;
    }
  }

  // Drop every endpoint reference (may free endpoints).
  for (EdptIdx idx = 0; idx < kMaxEdptDescriptors; ++idx) {
    if (thrd_perms_.Get(thrd).endpoints[idx] != kNullPtr) {
      UnbindEndpoint(alloc, thrd, idx);
    }
  }

  const Thread& t = thrd_perms_.Get(thrd);
  proc_perms_.GetMut(t.owning_proc).threads.Remove(t.slot_in_proc);
  cntr_perms_.GetMut(t.owning_ctnr).owned_threads.erase(thrd);
  CtnrPtr charged = t.owning_ctnr;

  FramePerm frame = UnplaceObject(thrd_perms_.TrackedRemove(thrd));
  FreeObjectPage(alloc, charged, thrd, std::move(frame));
}

void ProcessManager::RemoveProcess(PageAllocator* alloc, ProcPtr proc) {
  ATMO_CHECK(proc_perms_.contains(proc), "RemoveProcess of unknown process");
  const Process& p = proc_perms_.Get(proc);
  ATMO_CHECK(p.threads.empty(), "RemoveProcess with live threads");
  ATMO_CHECK(p.children.empty(), "RemoveProcess with live child processes");

  cntr_perms_.GetMut(p.owning_container).owned_procs.Remove(p.slot_in_container);
  if (p.parent != kNullPtr) {
    proc_perms_.GetMut(p.parent).children.Remove(p.slot_in_parent);
  }
  CtnrPtr charged = p.owning_container;

  FramePerm frame = UnplaceObject(proc_perms_.TrackedRemove(proc));
  FreeObjectPage(alloc, charged, proc, std::move(frame));
}

void ProcessManager::RemoveContainer(PageAllocator* alloc, CtnrPtr ctnr) {
  ATMO_CHECK(cntr_perms_.contains(ctnr), "RemoveContainer of unknown container");
  ATMO_CHECK(ctnr != root_container_, "the root container cannot be removed");
  const Container& c = cntr_perms_.Get(ctnr);
  ATMO_CHECK(c.owned_procs.empty(), "RemoveContainer with live processes");
  ATMO_CHECK(c.children.empty(), "RemoveContainer with live child containers");
  ATMO_CHECK(c.mem_used == 1, "RemoveContainer with outstanding charged pages (leak)");

  CtnrPtr parent = c.parent;
  std::uint64_t quota = c.mem_quota;
  std::uint32_t slot = c.slot_in_parent;
  SpecSeq<CtnrPtr> path = c.path;

  // Unlink and shrink every ancestor's subtree.
  cntr_perms_.GetMut(parent).children.Remove(slot);
  for (CtnrPtr ancestor : path) {
    cntr_perms_.GetMut(ancestor).subtree.erase(ctnr);
  }
  // Resources return to the parent (§3: harvest on termination).
  cntr_perms_.GetMut(parent).mem_quota += quota;

  FramePerm frame = UnplaceObject(cntr_perms_.TrackedRemove(ctnr));
  alloc->FreePage(ctnr, std::move(frame));
}

void ProcessManager::TransferCharge(CtnrPtr from, CtnrPtr to, std::uint64_t pages) {
  Container& src = cntr_perms_.GetMut(from);
  ATMO_CHECK(src.mem_used >= pages, "TransferCharge underflow on source container");
  src.mem_used -= pages;
  cntr_perms_.GetMut(to).mem_used += pages;
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

void ProcessManager::DispatchSpecific(ThrdPtr thrd) {
  ATMO_CHECK(current_ == kNullPtr, "DispatchSpecific while a thread is running");
  Thread& t = thrd_perms_.GetMut(thrd);
  ATMO_CHECK(t.state == ThreadState::kRunnable, "DispatchSpecific of non-runnable thread");
  DequeueRunnable(thrd);
  t.state = ThreadState::kRunning;
  current_ = thrd;
  sched_dirty_ = true;
}

void ProcessManager::PreemptCurrent() {
  ATMO_CHECK(current_ != kNullPtr, "PreemptCurrent with no current thread");
  thrd_perms_.GetMut(current_).state = ThreadState::kRunnable;
  // averif-lint: allow(hot-path-alloc) — run-queue vector retains capacity; push_back allocates only until the high-water thread count
  run_queue_.push_back(current_);
  current_ = kNullPtr;
  sched_dirty_ = true;
}

void ProcessManager::BlockCurrentForReply() {
  ATMO_CHECK(current_ != kNullPtr, "BlockCurrentForReply with no current thread");
  Thread& t = thrd_perms_.GetMut(current_);
  t.state = ThreadState::kBlockedCall;
  t.waiting_on = kNullPtr;
  t.wait_slot = kStaticListNil;
  current_ = kNullPtr;
  sched_dirty_ = true;
}

void ProcessManager::DequeueRunnable(ThrdPtr thrd) {
  auto it = std::find(run_queue_.begin(), run_queue_.end(), thrd);
  ATMO_CHECK(it != run_queue_.end(), "runnable thread absent from the run queue");
  run_queue_.erase(it);
  sched_dirty_ = true;
}

void ProcessManager::MakeRunnable(ThrdPtr thrd) {
  Thread& t = thrd_perms_.GetMut(thrd);
  ATMO_CHECK(t.state != ThreadState::kRunnable && t.state != ThreadState::kRunning,
             "MakeRunnable of a thread that is already schedulable");
  t.state = ThreadState::kRunnable;
  t.waiting_on = kNullPtr;
  t.wait_slot = kStaticListNil;
  // averif-lint: allow(hot-path-alloc) — run-queue vector retains capacity (see PreemptCurrent)
  run_queue_.push_back(thrd);
  sched_dirty_ = true;
}

void ProcessManager::Yield() {
  ATMO_CHECK(current_ != kNullPtr, "Yield with no current thread");
  ThrdPtr prev = current_;
  thrd_perms_.GetMut(prev).state = ThreadState::kRunnable;
  // averif-lint: allow(hot-path-alloc) — run-queue vector retains capacity (see PreemptCurrent)
  run_queue_.push_back(prev);
  current_ = kNullPtr;
  sched_dirty_ = true;
  ScheduleNext();
}

ThrdPtr ProcessManager::ScheduleNext() {
  ATMO_CHECK(current_ == kNullPtr, "ScheduleNext while a thread is running");
  if (run_queue_.empty()) {
    return kNullPtr;
  }
  ThrdPtr next = run_queue_.front();
  run_queue_.pop_front();
  thrd_perms_.GetMut(next).state = ThreadState::kRunning;
  current_ = next;
  sched_dirty_ = true;
  return next;
}

// ---------------------------------------------------------------------------
// Endpoint blocking
// ---------------------------------------------------------------------------

void ProcessManager::BlockCurrentOn(EdptPtr edpt, ThreadState blocked_state) {
  ATMO_CHECK(current_ != kNullPtr, "BlockCurrentOn with no current thread");
  ATMO_CHECK(blocked_state == ThreadState::kBlockedSend ||
                 blocked_state == ThreadState::kBlockedRecv ||
                 blocked_state == ThreadState::kBlockedCall,
             "BlockCurrentOn with a non-blocked state");
  Endpoint& e = edpt_perms_.GetMut(edpt);
  EdptQueueKind kind = blocked_state == ThreadState::kBlockedRecv ? EdptQueueKind::kReceivers
                                                                  : EdptQueueKind::kSenders;
  if (e.queue.empty()) {
    e.queue_kind = kind;
  } else {
    ATMO_CHECK(e.queue_kind == kind, "mixed sender/receiver endpoint queue");
  }
  ThrdPtr thrd = current_;
  Thread& t = thrd_perms_.GetMut(thrd);
  t.state = blocked_state;
  t.waiting_on = edpt;
  t.wait_slot = e.queue.PushBack(thrd);
  current_ = kNullPtr;
  sched_dirty_ = true;
}

ThrdPtr ProcessManager::PopWaiter(EdptPtr edpt) {
  Endpoint& e = edpt_perms_.GetMut(edpt);
  ATMO_CHECK(!e.queue.empty(), "PopWaiter on empty endpoint queue");
  ThrdPtr thrd = e.queue.PopFront();
  if (e.queue.empty()) {
    e.queue_kind = EdptQueueKind::kEmpty;
  }
  Thread& t = thrd_perms_.GetMut(thrd);
  t.waiting_on = kNullPtr;
  t.wait_slot = kStaticListNil;
  return thrd;
}

void ProcessManager::RemoveWaiter(EdptPtr edpt, ThrdPtr thrd) {
  Endpoint& e = edpt_perms_.GetMut(edpt);
  Thread& t = thrd_perms_.GetMut(thrd);
  ATMO_CHECK(t.waiting_on == edpt, "RemoveWaiter thread is not waiting on this endpoint");
  ATMO_CHECK(e.queue.At(t.wait_slot) == thrd, "endpoint queue reverse index corrupt");
  e.queue.Remove(t.wait_slot);
  if (e.queue.empty()) {
    e.queue_kind = EdptQueueKind::kEmpty;
  }
  t.waiting_on = kNullPtr;
  t.wait_slot = kStaticListNil;
}

// ---------------------------------------------------------------------------
// Ghost / spec
// ---------------------------------------------------------------------------

SpecSet<CtnrPtr> ProcessManager::SubtreeContainers(CtnrPtr c) const {
  // averif-lint: allow(hot-path-alloc) — subtree walk feeds container kill — cold teardown path
  return cntr_perms_.Get(c).subtree.insert(c);
}

SpecSet<ProcPtr> ProcessManager::SubtreeProcs(CtnrPtr c) const {
  SpecSet<ProcPtr> out;
  for (CtnrPtr ctnr : SubtreeContainers(c)) {
    for (ProcPtr proc : cntr_perms_.Get(ctnr).owned_procs) {
      out.add(proc);
    }
  }
  return out;
}

SpecSet<ThrdPtr> ProcessManager::SubtreeThreads(CtnrPtr c) const {
  SpecSet<ThrdPtr> out;
  for (CtnrPtr ctnr : SubtreeContainers(c)) {
    out = out.Union(cntr_perms_.Get(ctnr).owned_threads);
  }
  return out;
}

SpecSet<PagePtr> ProcessManager::PageClosure() const {
  SpecSet<PagePtr> out = cntr_perms_.Dom();
  out = out.Union(proc_perms_.Dom());
  out = out.Union(thrd_perms_.Dom());
  out = out.Union(edpt_perms_.Dom());
  return out;
}

void ProcessManager::DrainDirty(DirtySet* out) {
  cntr_perms_.DrainDirtyInto(&out->ctnrs, &out->overflow);
  proc_perms_.DrainDirtyInto(&out->procs, &out->overflow);
  thrd_perms_.DrainDirtyInto(&out->thrds, &out->overflow);
  edpt_perms_.DrainDirtyInto(&out->edpts, &out->overflow);
  out->scheduler = out->scheduler || sched_dirty_;
  sched_dirty_ = false;
}

ProcessManager ProcessManager::CloneForVerification() const {
  ProcessManager out;
  CloneForVerificationInto(&out);
  return out;
}

void ProcessManager::CloneForVerificationInto(ProcessManager* out) const {
  out->root_container_ = root_container_;
  out->initial_quota_ = initial_quota_;
  cntr_perms_.CloneForVerificationInto(&out->cntr_perms_);
  proc_perms_.CloneForVerificationInto(&out->proc_perms_);
  thrd_perms_.CloneForVerificationInto(&out->thrd_perms_);
  edpt_perms_.CloneForVerificationInto(&out->edpt_perms_);
  out->run_queue_ = run_queue_;
  out->current_ = current_;
  out->sched_dirty_ = false;  // clones start with a clean scheduler mark
}

}  // namespace atmo
