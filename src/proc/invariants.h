// Well-formedness invariants of the process-management subsystem (§4.1).
//
// Each invariant is a separate "closed spec function" — callers establish
// them through the lemmas encoded in ProcessManager's operations and the
// harness re-checks them after every kernel step. The container-tree
// invariant uses the paper's *non-recursive* formulations enabled by flat
// permission storage: path prefix-closure (`resolve_path_wf`), bidirectional
// subtree membership, and direct parent/child link consistency — no
// recursive descent over the tree.

#ifndef ATMO_SRC_PROC_INVARIANTS_H_
#define ATMO_SRC_PROC_INVARIANTS_H_

#include <string>

#include "src/pmem/page_allocator.h"
#include "src/proc/process_manager.h"

namespace atmo {

struct InvResult {
  bool ok = true;
  std::string detail;

  static InvResult Fail(std::string d) { return InvResult{false, std::move(d)}; }
};

// container_tree_wf: root anchoring, parent/children mutual consistency,
// depth/path/subtree ghost-state correctness, acyclicity.
InvResult ContainerTreeWf(const ProcessManager& pm);

// process_tree_wf: per-container process trees are well-formed.
InvResult ProcessTreeWf(const ProcessManager& pm);

// threads_wf: ownership links and the state/location exclusivity — every
// thread is in exactly the place its state says (current / run queue /
// endpoint wait queue).
InvResult ThreadsWf(const ProcessManager& pm);

// endpoints_wf: reference counts equal descriptor references; wait queues
// hold matching blocked threads.
InvResult EndpointsWf(const ProcessManager& pm);

// scheduler_wf: the run queue holds exactly the runnable threads, no
// duplicates; current is running.
InvResult SchedulerWf(const ProcessManager& pm);

// quota_wf: per-container page accounting matches the allocator's owner
// attribution, usage respects quotas, and the total reservation is
// conserved across the container tree.
InvResult QuotaWf(const ProcessManager& pm, const PageAllocator& alloc);

// Conjunction of all of the above (without quota, which needs the
// allocator).
InvResult ProcessManagerWf(const ProcessManager& pm);

}  // namespace atmo

#endif  // ATMO_SRC_PROC_INVARIANTS_H_
