// Dirty-set tracking for incremental abstraction (O(dirty) refinement
// checking).
//
// Every stateful subsystem appends the ids of objects it mutates to a
// DirtyLog — an over-approximation is always safe, an omission never is (the
// refinement checker's audit mode exists to catch the latter). The kernel
// facade drains all subsystem logs into one DirtySet per checked step;
// Kernel::AbstractDelta then patches exactly those entries of a cached
// abstract state instead of rebuilding Ψ from scratch.
//
// The log is an append-only vector (duplicates allowed — deduplication
// happens once, at drain time) so the uninstrumented hot path pays one
// push_back per mutation. If a log grows past kCap without being drained
// (a long unchecked run), recording stops and the drain reports `overflow`,
// which makes the next delta-abstraction fall back to a full rebuild.

#ifndef ATMO_SRC_VSTD_DIRTY_SET_H_
#define ATMO_SRC_VSTD_DIRTY_SET_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/vstd/types.h"

namespace atmo {

// One step's worth of touched object ids, per kind.
struct DirtySet {
  std::set<CtnrPtr> ctnrs;
  std::set<ProcPtr> procs;
  std::set<ThrdPtr> thrds;
  std::set<EdptPtr> edpts;
  std::set<PagePtr> pages;                // 4 KiB frame base addresses
  std::set<ProcPtr> spaces;               // address spaces (by process)
  std::set<std::uint64_t> iommu_domains;  // IommuDomainId
  std::set<std::uint64_t> rings;          // syscall ring ids
  bool scheduler = false;                 // run queue / current thread
  bool overflow = false;                  // some log overflowed: full rebuild

  std::size_t TotalEntries() const {
    return ctnrs.size() + procs.size() + thrds.size() + edpts.size() + pages.size() +
           spaces.size() + iommu_domains.size() + rings.size();
  }
  bool Empty() const { return TotalEntries() == 0 && !scheduler && !overflow; }
};

// Append-only per-subsystem mutation log. All kernel object ids are
// 64-bit (pointers / domain ids), so one log type serves every subsystem.
class DirtyLog {
 public:
  static constexpr std::size_t kCap = 1u << 20;

  void Mark(std::uint64_t id) {
    if (overflow_) {
      return;
    }
    if (log_.size() >= kCap) {
      overflow_ = true;
      log_.clear();
      log_.shrink_to_fit();
      return;
    }
    // averif-lint: allow(hot-path-alloc) — log vector retains capacity across drains (clear() keeps capacity); allocation stops at the high-water mark
    log_.push_back(id);
  }

  bool overflow() const { return overflow_; }
  std::size_t pending() const { return log_.size(); }

  // Dedups into `out`, sets `*overflow_out` if the log overflowed, and
  // resets the log.
  template <typename Id>
  void DrainInto(std::set<Id>* out, bool* overflow_out) {
    if (overflow_) {
      *overflow_out = true;
    } else {
      // averif-lint: allow(hot-path-alloc) — dedup into the caller's set happens once per checker capture, bounded by dirty-entry count and the dynamic AllocProbe gate
      out->insert(log_.begin(), log_.end());
    }
    log_.clear();
    overflow_ = false;
  }

  void Reset() {
    log_.clear();
    overflow_ = false;
  }

 private:
  std::vector<std::uint64_t> log_;
  bool overflow_ = false;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_DIRTY_SET_H_
