// SpecMap<K, V> — executable analog of Verus `Map<K, V>`.
//
// Abstract kernel state ("ghost" state) is expressed with functional maps.
// SpecMap is value-semantic and ordered (deterministic iteration), supports
// the operations used by the paper's specifications (dom, contains, index,
// insert, remove, submap/union, extensional equality) and quantifier helpers
// used to transliterate `forall` specs.
//
// Representation: copy-on-write structural sharing. Copying a SpecMap is
// O(1) (the shared_ptr rep is shared); the first mutation of a shared map
// detaches a private copy. Extensional equality and the frame-condition
// helpers short-circuit when two maps share a rep, which makes the paper's
// strongest frame condition (`error ==> Ψ' == Ψ`) near-free for states
// produced by the incremental abstraction layer (Kernel::AbstractDelta).
// A null rep denotes the empty map.
//
// Allocation: reps draw from the thread's current SpecArena when one is
// installed (ArenaScope — the refinement checker's hot path), and from the
// global heap otherwise. The arena is captured at detach time and co-owned
// by the rep, so a rep can never dangle (src/vstd/arena.h lifetime rules).

#ifndef ATMO_SRC_VSTD_SPEC_MAP_H_
#define ATMO_SRC_VSTD_SPEC_MAP_H_

#include <map>
#include <memory>
#include <utility>

#include "src/vstd/arena.h"
#include "src/vstd/check.h"

namespace atmo {

template <typename K, typename V>
class SpecMap {
 public:
  SpecMap() = default;
  SpecMap(std::initializer_list<std::pair<const K, V>> init) {
    if (init.size() != 0) {
      NodeAlloc alloc;
      rep_ = std::allocate_shared<Rep>(alloc, init, std::less<K>(), alloc);
    }
  }

  bool contains(const K& k) const { return rep_ && rep_->find(k) != rep_->end(); }

  // Map index; the key must be in the domain (spec-level partiality).
  const V& at(const K& k) const {
    ATMO_CHECK(rep_ != nullptr, "SpecMap::at on key outside dom()");
    auto it = rep_->find(k);
    ATMO_CHECK(it != rep_->end(), "SpecMap::at on key outside dom()");
    return it->second;
  }

  std::size_t size() const { return rep_ ? rep_->size() : 0; }
  bool empty() const { return !rep_ || rep_->empty(); }

  // Functional update: returns a copy with k -> v (O(1) copy + one write).
  SpecMap insert(const K& k, const V& v) const {
    SpecMap out = *this;
    out.set(k, v);
    return out;
  }

  // Functional removal: returns a copy without k.
  SpecMap remove(const K& k) const {
    SpecMap out = *this;
    out.erase(k);
    return out;
  }

  // In-place variants (used when building abstract states incrementally).
  void set(const K& k, const V& v) { Detach()[k] = v; }
  void erase(const K& k) {
    if (!contains(k)) {
      return;  // no-op: keep the rep shared
    }
    Detach().erase(k);
  }

  // `forall |k| dom.contains(k) ==> p(k, self[k])`.
  template <typename Pred>
  bool ForAll(Pred p) const {
    for (const auto& [k, v] : view()) {
      if (!p(k, v)) {
        return false;
      }
    }
    return true;
  }

  // `exists |k| dom.contains(k) && p(k, self[k])`.
  template <typename Pred>
  bool Exists(Pred p) const {
    for (const auto& [k, v] : view()) {
      if (p(k, v)) {
        return true;
      }
    }
    return false;
  }

  // True when both maps share one rep: equal by construction, O(1).
  bool SharesRepWith(const SpecMap& other) const { return rep_ == other.rep_; }

  // Extensional equality (`=~=`).
  friend bool operator==(const SpecMap& a, const SpecMap& b) {
    if (a.rep_ == b.rep_) {
      return true;
    }
    return a.view() == b.view();
  }

  // True if every binding of this map is also a binding of `other`.
  bool IsSubmapOf(const SpecMap& other) const {
    if (SharesRepWith(other)) {
      return true;
    }
    for (const auto& [k, v] : view()) {
      if (!other.contains(k) || !(other.at(k) == v)) {
        return false;
      }
    }
    return true;
  }

  // True if `a` and `b` agree everywhere except possibly at `k`.
  static bool AgreeExceptAt(const SpecMap& a, const SpecMap& b, const K& k) {
    if (a.SharesRepWith(b)) {
      return true;
    }
    for (const auto& [key, v] : a.view()) {
      if (key == k) {
        continue;
      }
      if (!b.contains(key) || !(b.at(key) == v)) {
        return false;
      }
    }
    for (const auto& [key, v] : b.view()) {
      if (key == k) {
        continue;
      }
      if (!a.contains(key)) {
        return false;
      }
    }
    return true;
  }

  // True if `a` and `b` agree everywhere except possibly at `k1` and `k2`
  // (two-key frame condition: e.g. an address space touched at both the
  // grant source and destination by a self-directed move/borrow grant).
  static bool AgreeExceptAt2(const SpecMap& a, const SpecMap& b, const K& k1, const K& k2) {
    if (a.SharesRepWith(b)) {
      return true;
    }
    for (const auto& [key, v] : a.view()) {
      if (key == k1 || key == k2) {
        continue;
      }
      if (!b.contains(key) || !(b.at(key) == v)) {
        return false;
      }
    }
    for (const auto& [key, v] : b.view()) {
      if (key == k1 || key == k2) {
        continue;
      }
      if (!a.contains(key)) {
        return false;
      }
    }
    return true;
  }

  auto begin() const { return view().begin(); }
  auto end() const { return view().end(); }

 private:
  using NodeAlloc = ArenaAllocator<std::pair<const K, V>>;
  using Rep = std::map<K, V, std::less<K>, NodeAlloc>;

  const Rep& view() const {
    // Explicit null arena: kEmpty must not capture (and pin) whatever arena
    // happens to be in scope on first use.
    static const Rep kEmpty{NodeAlloc(nullptr)};
    return rep_ ? *rep_ : kEmpty;
  }

  // Detached reps are placed wherever the *current* scope says, not where
  // the source rep lived: a checker-scoped patch of a heap-built snapshot
  // lands in the checker's arena, and an unscoped copy of an arena-built
  // snapshot lands on the heap.
  Rep& Detach() {
    NodeAlloc alloc;
    if (!rep_) {
      rep_ = std::allocate_shared<Rep>(alloc, alloc);
    } else if (rep_.use_count() > 1) {
      rep_ = std::allocate_shared<Rep>(alloc, *rep_, alloc);
    }
    return *rep_;
  }

  std::shared_ptr<Rep> rep_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_SPEC_MAP_H_
