// SpecMap<K, V> — executable analog of Verus `Map<K, V>`.
//
// Abstract kernel state ("ghost" state) is expressed with functional maps.
// SpecMap is value-semantic and ordered (deterministic iteration), supports
// the operations used by the paper's specifications (dom, contains, index,
// insert, remove, submap/union, extensional equality) and quantifier helpers
// used to transliterate `forall` specs.

#ifndef ATMO_SRC_VSTD_SPEC_MAP_H_
#define ATMO_SRC_VSTD_SPEC_MAP_H_

#include <map>
#include <utility>

#include "src/vstd/check.h"

namespace atmo {

template <typename K, typename V>
class SpecMap {
 public:
  SpecMap() = default;
  SpecMap(std::initializer_list<std::pair<const K, V>> init) : rep_(init) {}

  bool contains(const K& k) const { return rep_.find(k) != rep_.end(); }

  // Map index; the key must be in the domain (spec-level partiality).
  const V& at(const K& k) const {
    auto it = rep_.find(k);
    ATMO_CHECK(it != rep_.end(), "SpecMap::at on key outside dom()");
    return it->second;
  }

  std::size_t size() const { return rep_.size(); }
  bool empty() const { return rep_.empty(); }

  // Functional update: returns a copy with k -> v.
  SpecMap insert(const K& k, const V& v) const {
    SpecMap out = *this;
    out.rep_[k] = v;
    return out;
  }

  // Functional removal: returns a copy without k.
  SpecMap remove(const K& k) const {
    SpecMap out = *this;
    out.rep_.erase(k);
    return out;
  }

  // In-place variants (used when building abstract states incrementally).
  void set(const K& k, const V& v) { rep_[k] = v; }
  void erase(const K& k) { rep_.erase(k); }

  // `forall |k| dom.contains(k) ==> p(k, self[k])`.
  template <typename Pred>
  bool ForAll(Pred p) const {
    for (const auto& [k, v] : rep_) {
      if (!p(k, v)) {
        return false;
      }
    }
    return true;
  }

  // `exists |k| dom.contains(k) && p(k, self[k])`.
  template <typename Pred>
  bool Exists(Pred p) const {
    for (const auto& [k, v] : rep_) {
      if (p(k, v)) {
        return true;
      }
    }
    return false;
  }

  // Extensional equality (`=~=`).
  friend bool operator==(const SpecMap& a, const SpecMap& b) { return a.rep_ == b.rep_; }

  // True if every binding of this map is also a binding of `other`.
  bool IsSubmapOf(const SpecMap& other) const {
    for (const auto& [k, v] : rep_) {
      if (!other.contains(k) || !(other.at(k) == v)) {
        return false;
      }
    }
    return true;
  }

  // True if `a` and `b` agree everywhere except possibly at `k`.
  static bool AgreeExceptAt(const SpecMap& a, const SpecMap& b, const K& k) {
    for (const auto& [key, v] : a.rep_) {
      if (key == k) {
        continue;
      }
      if (!b.contains(key) || !(b.at(key) == v)) {
        return false;
      }
    }
    for (const auto& [key, v] : b.rep_) {
      if (key == k) {
        continue;
      }
      if (!a.contains(key)) {
        return false;
      }
    }
    return true;
  }

  auto begin() const { return rep_.begin(); }
  auto end() const { return rep_.end(); }

 private:
  std::map<K, V> rep_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_SPEC_MAP_H_
