// PermissionMap<T> — the "flat" permission storage of the paper (Listing 2).
//
// Each subsystem's topmost level owns one PermissionMap per kernel object
// kind (containers, processes, threads, endpoints, page-table nodes, ...).
// The map is the executable analog of Verus
// `Tracked<Map<Ptr, PointsTo<T>>>`: permissions to *all* objects of a kind
// live here, giving the subsystem a global view of the data structure. This
// is the key architectural choice of the paper — structural invariants can
// be stated non-recursively against the map instead of recursively along the
// pointer structure.

#ifndef ATMO_SRC_VSTD_PERMISSION_MAP_H_
#define ATMO_SRC_VSTD_PERMISSION_MAP_H_

#include <map>
#include <set>
#include <utility>

#include "src/vstd/check.h"
#include "src/vstd/dirty_set.h"
#include "src/vstd/points_to.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

template <typename T>
class PermissionMap {
 public:
  PermissionMap() = default;
  PermissionMap(PermissionMap&&) noexcept = default;
  PermissionMap& operator=(PermissionMap&&) noexcept = default;
  PermissionMap(const PermissionMap&) = delete;
  PermissionMap& operator=(const PermissionMap&) = delete;

  bool contains(Ptr ptr) const { return rep_.find(ptr) != rep_.end(); }
  std::size_t size() const { return rep_.size(); }
  bool empty() const { return rep_.empty(); }

  // tracked_insert: the map takes ownership of the permission. The key must
  // equal the permission's address and must not already be present.
  void TrackedInsert(PointsTo<T> perm) {
    Ptr ptr = perm.addr();
    ATMO_CHECK(!contains(ptr), "PermissionMap::TrackedInsert duplicate permission");
    dirty_.Mark(ptr);
    // averif-lint: allow(hot-path-alloc) — tracked insert records object creation, which only spawn/map control-plane ops perform
    rep_.emplace(ptr, std::move(perm));
  }

  // tracked_remove: moves the permission out of the map.
  PointsTo<T> TrackedRemove(Ptr ptr) {
    auto it = rep_.find(ptr);
    ATMO_CHECK(it != rep_.end(), "PermissionMap::TrackedRemove of absent permission");
    dirty_.Mark(ptr);
    PointsTo<T> out = std::move(it->second);
    rep_.erase(it);
    return out;
  }

  // tracked_borrow: immutable access to a stored permission.
  const PointsTo<T>& TrackedBorrow(Ptr ptr) const {
    auto it = rep_.find(ptr);
    ATMO_CHECK(it != rep_.end(), "PermissionMap::TrackedBorrow of absent permission");
    return it->second;
  }

  // tracked_borrow_mut: exclusive access to a stored permission. The object
  // is conservatively recorded as dirty — the borrower may mutate anything.
  PointsTo<T>& TrackedBorrowMut(Ptr ptr) {
    auto it = rep_.find(ptr);
    ATMO_CHECK(it != rep_.end(), "PermissionMap::TrackedBorrowMut of absent permission");
    dirty_.Mark(ptr);
    return it->second;
  }

  // Convenience: borrow the object value directly.
  const T& Get(Ptr ptr) const { return TrackedBorrow(ptr).value(); }
  T& GetMut(Ptr ptr) { return TrackedBorrowMut(ptr).value_mut(); }

  // Ghost view of the domain (the set of all objects of this kind).
  SpecSet<Ptr> Dom() const {
    SpecSet<Ptr> out;
    for (const auto& [ptr, perm] : rep_) {
      out.add(ptr);
    }
    return out;
  }

  // `forall |ptr| dom.contains(ptr) ==> p(ptr, value)` over all objects.
  template <typename Pred>
  bool ForAll(Pred p) const {
    for (const auto& [ptr, perm] : rep_) {
      if (!p(ptr, perm.value())) {
        return false;
      }
    }
    return true;
  }

  // Dedup-drains the mutation log into `out` (incremental abstraction).
  void DrainDirtyInto(std::set<Ptr>* out, bool* overflow) { dirty_.DrainInto(out, overflow); }

  // Deep copy for the verification harness only (see PointsTo). The clone
  // starts with an empty mutation log (its first abstraction is full).
  PermissionMap CloneForVerification() const
    requires std::copy_constructible<T>
  {
    PermissionMap out;
    for (const auto& [ptr, perm] : rep_) {
      out.rep_.emplace(ptr, perm.CloneForVerification());
    }
    return out;
  }

  // Pooled clone (DESIGN.md §14): deep-copies this map into `out`, reusing
  // `out`'s existing map nodes and value storage via a sorted merge walk —
  // entries present in both maps are overwritten in place, stale entries
  // erased, missing ones inserted with a position hint. Semantically
  // identical to `*out = CloneForVerification()` (the differential test
  // proves it), but steady-state reuse performs no node allocations.
  void CloneForVerificationInto(PermissionMap* out) const
    requires std::copy_constructible<T>
  {
    auto dit = out->rep_.begin();
    for (const auto& [ptr, perm] : rep_) {
      while (dit != out->rep_.end() && dit->first < ptr) {
        dit = out->rep_.erase(dit);
      }
      if (dit != out->rep_.end() && dit->first == ptr) {
        dit->second.CloneForVerificationFrom(perm);
        ++dit;
      } else {
        out->rep_.emplace_hint(dit, ptr, perm.CloneForVerification());
      }
    }
    out->rep_.erase(dit, out->rep_.end());
    out->dirty_.Reset();  // clones start with an empty mutation log
  }

  auto begin() const { return rep_.begin(); }
  auto end() const { return rep_.end(); }

 private:
  std::map<Ptr, PointsTo<T>> rep_;
  DirtyLog dirty_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_PERMISSION_MAP_H_
