// Core scalar types shared by every Atmosphere subsystem.
//
// The paper's kernel is pointer-centric: kernel objects are identified by raw
// physical addresses ("ThrdPtr", "CtnrPtr", ...). In this executable model a
// pointer is a page-aligned address within the simulated physical memory
// (see src/hw/phys_mem.h). Distinct alias names are kept so signatures read
// like the paper's Listings.

#ifndef ATMO_SRC_VSTD_TYPES_H_
#define ATMO_SRC_VSTD_TYPES_H_

#include <cstddef>
#include <cstdint>

namespace atmo {

// A simulated physical address. Page-aligned for kernel object pointers.
using Ptr = std::uint64_t;

// Physical / virtual addresses in the simulated machine.
using PAddr = std::uint64_t;
using VAddr = std::uint64_t;

// Kernel object pointers (all page-aligned physical addresses).
using CtnrPtr = Ptr;
using ProcPtr = Ptr;
using ThrdPtr = Ptr;
using EdptPtr = Ptr;
using PagePtr = Ptr;

// Index of an endpoint descriptor within a thread's descriptor table.
using EdptIdx = std::uint32_t;

// The distinguished null pointer. Address 0 is never handed out by the
// allocator, so 0 is safe as a sentinel everywhere.
inline constexpr Ptr kNullPtr = 0;

// Page geometry (x86-64).
inline constexpr std::uint64_t kPageSize4K = 4096;
inline constexpr std::uint64_t kPageSize2M = 2 * 1024 * 1024;
inline constexpr std::uint64_t kPageSize1G = 1024 * 1024 * 1024;
inline constexpr std::uint64_t kPtEntriesPerNode = 512;

// Size class of a physical page / mapping.
enum class PageSize : std::uint8_t {
  k4K = 0,
  k2M = 1,
  k1G = 2,
};

// Number of bytes covered by a page of the given size class.
constexpr std::uint64_t PageBytes(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return kPageSize4K;
    case PageSize::k2M:
      return kPageSize2M;
    case PageSize::k1G:
      return kPageSize1G;
  }
  return kPageSize4K;
}

// Number of 4K frames covered by a page of the given size class.
constexpr std::uint64_t PageFrames4K(PageSize size) { return PageBytes(size) / kPageSize4K; }

// Access permission bits attached to a virtual mapping (subset of x86 PTE
// semantics: present is implicit, writable and user-accessible are tracked;
// execute-disable is modelled as a bit too).
struct MapEntryPerm {
  bool writable = false;
  bool user = true;
  bool no_execute = false;

  friend bool operator==(const MapEntryPerm&, const MapEntryPerm&) = default;
};

// One entry of the abstract address-space map: where a virtual page points
// and with which rights (Listing 1: `Map<VAddr, MapEntry>`).
struct MapEntry {
  PAddr addr = 0;
  PageSize size = PageSize::k4K;
  MapEntryPerm perm;

  friend bool operator==(const MapEntry&, const MapEntry&) = default;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_TYPES_H_
