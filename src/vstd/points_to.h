// Linear tracked permissions — executable analog of Verus `PPtr<T>` /
// `PointsTo<T>`.
//
// In Verus a permissioned pointer is a raw usize address, and the linear
// (tracked) ghost permission both authorizes access through the pointer and
// carries the logical value of the pointee. The executable model keeps the
// same split:
//
//   * `PPtr<T>`     — a plain address (copyable, does not grant access).
//   * `PointsTo<T>` — a move-only token bound to the address; it stores the
//                     object's value and its initialization state. Every
//                     access to the object goes through the token, so
//                     aliasing, use-after-free and double-init become
//                     runtime verification failures instead of compile
//                     errors.
//
// Tokens are minted by the allocator path (`PlaceObject`, src/pmem) and
// consumed on deallocation; leak freedom is established by the global
// page-closure invariant rather than by destructors.

#ifndef ATMO_SRC_VSTD_POINTS_TO_H_
#define ATMO_SRC_VSTD_POINTS_TO_H_

#include <optional>
#include <utility>

#include "src/vstd/check.h"
#include "src/vstd/types.h"

namespace atmo {

template <typename T>
class PointsTo;

// A raw, copyable pointer. Dereferencing requires the matching PointsTo.
template <typename T>
class PPtr {
 public:
  PPtr() = default;
  explicit PPtr(Ptr addr) : addr_(addr) {}

  static PPtr FromUsize(Ptr addr) { return PPtr(addr); }

  Ptr addr() const { return addr_; }
  bool is_null() const { return addr_ == kNullPtr; }

  // Immutable access: requires an initialized permission for this address.
  const T& Borrow(const PointsTo<T>& perm) const;
  // Mutable access: requires exclusive (non-const) access to the permission.
  T& BorrowMut(PointsTo<T>& perm) const;

  friend bool operator==(const PPtr&, const PPtr&) = default;

 private:
  Ptr addr_ = kNullPtr;
};

template <typename T>
class PointsTo {
 public:
  // Mints an uninitialized permission for `addr`. Production code mints
  // permissions only on the allocation path (see src/pmem/object_alloc.h).
  static PointsTo Uninit(Ptr addr) { return PointsTo(addr, std::nullopt); }

  // Mints an initialized permission holding `value`.
  static PointsTo Init(Ptr addr, T value) { return PointsTo(addr, std::move(value)); }

  PointsTo(PointsTo&& other) noexcept
      : addr_(other.addr_), value_(std::move(other.value_)), alive_(other.alive_) {
    other.alive_ = false;
  }
  PointsTo& operator=(PointsTo&& other) noexcept {
    if (this != &other) {
      addr_ = other.addr_;
      value_ = std::move(other.value_);
      alive_ = other.alive_;
      other.alive_ = false;
    }
    return *this;
  }

  PointsTo(const PointsTo&) = delete;
  PointsTo& operator=(const PointsTo&) = delete;

  Ptr addr() const {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    return addr_;
  }
  bool is_init() const {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    return value_.has_value();
  }

  // The logical value carried by the permission (Listing 1, line 37 uses
  // `perm@.value()` in specs; executable reads go through PPtr::Borrow).
  const T& value() const {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    ATMO_CHECK(value_.has_value(), "PointsTo::value on uninitialized permission");
    return *value_;
  }
  T& value_mut() {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    ATMO_CHECK(value_.has_value(), "PointsTo::value_mut on uninitialized permission");
    return *value_;
  }

  // Moves the value out, leaving the permission uninitialized (ptr::take).
  T Take() {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    ATMO_CHECK(value_.has_value(), "PointsTo::Take on uninitialized permission");
    T out = std::move(*value_);
    value_.reset();
    return out;
  }

  // Writes a value into an uninitialized permission (ptr::put).
  void Put(T value) {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    ATMO_CHECK(!value_.has_value(), "PointsTo::Put on initialized permission (double init)");
    value_ = std::move(value);
  }

  // Overwrites the value of an initialized permission (ptr::replace).
  T Replace(T value) {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    ATMO_CHECK(value_.has_value(), "PointsTo::Replace on uninitialized permission");
    T out = std::move(*value_);
    value_ = std::move(value);
    return out;
  }

  // Deep copy used only by the verification harness (Kernel::Clone for
  // noninterference unwinding checks). Not part of the kernel's API surface.
  PointsTo CloneForVerification() const
    requires std::copy_constructible<T>
  {
    ATMO_CHECK(alive_, "PointsTo used after move/consume");
    PointsTo out(addr_, std::nullopt);
    if (value_.has_value()) {
      out.value_ = *value_;
    }
    return out;
  }

  // Pooled variant: overwrite this permission in place with a deep copy of
  // `src`, reusing the engaged value's storage (a T copy-assign instead of
  // a destroy + construct). Same harness-only caveat as above.
  void CloneForVerificationFrom(const PointsTo& src)
    requires std::copy_constructible<T> && std::assignable_from<T&, const T&>
  {
    ATMO_CHECK(src.alive_, "PointsTo used after move/consume");
    addr_ = src.addr_;
    alive_ = true;
    if (src.value_.has_value()) {
      if (value_.has_value()) {
        *value_ = *src.value_;
      } else {
        value_.emplace(*src.value_);
      }
    } else {
      value_.reset();
    }
  }

 private:
  PointsTo(Ptr addr, std::optional<T> value) : addr_(addr), value_(std::move(value)) {}

  Ptr addr_ = kNullPtr;
  std::optional<T> value_;
  bool alive_ = true;
};

template <typename T>
const T& PPtr<T>::Borrow(const PointsTo<T>& perm) const {
  ATMO_CHECK(perm.addr() == addr_, "PPtr::Borrow with permission for a different address");
  ATMO_CHECK(perm.is_init(), "PPtr::Borrow with uninitialized permission");
  return perm.value();
}

template <typename T>
T& PPtr<T>::BorrowMut(PointsTo<T>& perm) const {
  ATMO_CHECK(perm.addr() == addr_, "PPtr::BorrowMut with permission for a different address");
  ATMO_CHECK(perm.is_init(), "PPtr::BorrowMut with uninitialized permission");
  return perm.value_mut();
}

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_POINTS_TO_H_
