// SpecArena — bump/pool arena backing the COW reps of the spec collections.
//
// Every checked step detaches fresh SpecMap/SpecSet reps (the incremental
// abstraction's copy-on-write discipline) and throws the previous step's
// intermediates away. Under the global heap that is a malloc/free pair per
// map node per step — the dominant allocation cost on the checking hot path
// (DESIGN.md §14). SpecArena replaces it with the percpu/prealloc idiom of
// kernel/bpf/hashtab.c: node-sized blocks come from per-size-class free
// lists threaded through retired nodes, refilled by bumping through large
// chunks, so steady-state checking performs zero heap allocations.
//
// Lifetime rules (enforced, not assumed):
//
//  * An ArenaScope installs an arena as the thread's current allocation
//    target; every SpecMap/SpecSet rep detached (and every SpecSeq built)
//    inside the scope draws from it. No scope (the default everywhere
//    outside the checker) means the global heap — behaviour unchanged.
//  * ArenaAllocator holds shared ownership of its arena, so a rep can
//    never outlive the chunks it lives in: an escaped snapshot keeps the
//    arena alive instead of dangling.
//  * Reset() rewinds the bump pointers and clears the free lists, but only
//    when no allocation is live; a Reset refused because a snapshot
//    escaped is a skipped recycle, never a use-after-reset. The
//    RefinementChecker resets at audit boundaries, where the full
//    re-abstraction has just rebuilt the cached Ψ in the partner arena and
//    everything in the old arena is provably dead (DESIGN.md §14).
//  * Arenas are single-threaded by construction (per-checker, per-shard).
//    Blocks freed from a foreign thread are routed back to the heap-safe
//    path: counted, not recycled.

#ifndef ATMO_SRC_VSTD_ARENA_H_
#define ATMO_SRC_VSTD_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <utility>
#include <vector>

#include "src/vstd/check.h"

namespace atmo {

class SpecArena {
 public:
  // Allocation sizes are rounded up to one of these power-of-two classes;
  // larger requests fall through to the heap (counted, still correct).
  static constexpr std::size_t kMinClassBytes = 32;
  static constexpr std::size_t kMaxClassBytes = 4096;
  static constexpr std::size_t kClassCount = 8;  // 32..4096

  struct Stats {
    std::uint64_t chunk_bytes = 0;      // reserved from the heap, reusable
    std::uint64_t chunks = 0;
    std::uint64_t allocs = 0;           // arena-served allocations
    std::uint64_t freelist_hits = 0;    // allocs served without bumping
    std::uint64_t heap_fallbacks = 0;   // oversize requests sent to the heap
    std::uint64_t resets = 0;
    std::uint64_t refused_resets = 0;   // live allocations blocked a Reset
  };

  explicit SpecArena(std::size_t reserve_bytes = 0,
                     std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < kMaxClassBytes + kHeaderBytes
                         ? kMaxClassBytes + kHeaderBytes
                         : chunk_bytes),
        owner_(std::this_thread::get_id()) {
    while (reserved() < reserve_bytes) {
      AddChunk();
    }
  }

  ~SpecArena() {
    // ArenaAllocator's shared ownership guarantees no rep outlives us.
    for (Chunk& c : chunks_) {
      ::operator delete(c.base, std::align_val_t{kHeaderAlign});
    }
  }

  SpecArena(const SpecArena&) = delete;
  SpecArena& operator=(const SpecArena&) = delete;

  // The thread's currently installed arena (may be null = heap).
  static const std::shared_ptr<SpecArena>& Current();

  void* Allocate(std::size_t bytes) {
    int cls = ClassOf(bytes);
    if (cls < 0 || std::this_thread::get_id() != owner_) {
      ++stats_.heap_fallbacks;
      Header* h = static_cast<Header*>(
          ::operator new(bytes + kHeaderBytes, std::align_val_t{kHeaderAlign}));
      h->owner = nullptr;
      h->size_class = -1;
      return h + 1;
    }
    ++stats_.allocs;
    ++live_;
    if (free_lists_[cls] != nullptr) {
      ++stats_.freelist_hits;
      FreeNode* node = free_lists_[cls];
      free_lists_[cls] = node->next;
      Header* h = reinterpret_cast<Header*>(node);
      h->owner = this;
      h->size_class = cls;
      return h + 1;
    }
    std::size_t need = ClassBytes(cls) + kHeaderBytes;
    if (chunks_.empty() || chunks_[chunk_index_].size - cursor_ < need) {
      if (!Advance(need)) {
        AddChunk();
        chunk_index_ = chunks_.size() - 1;
        cursor_ = 0;
      }
    }
    Header* h = reinterpret_cast<Header*>(chunks_[chunk_index_].base + cursor_);
    cursor_ += need;
    h->owner = this;
    h->size_class = cls;
    return h + 1;
  }

  // Routes `p` (a pointer previously returned by any SpecArena's Allocate,
  // or the heap fallback) back where it came from. Static so the allocator
  // does not need to know which arena served the block.
  static void Deallocate(void* p) {
    Header* h = static_cast<Header*>(p) - 1;
    if (h->owner == nullptr) {
      ::operator delete(h, std::align_val_t{kHeaderAlign});
      return;
    }
    h->owner->Release(h);
  }

  // Rewinds the bump cursor and clears the free lists. Only legal (and only
  // performed) when nothing is live; returns whether the reset happened.
  bool Reset() {
    if (live_ != 0) {
      ++stats_.refused_resets;
      return false;
    }
    for (FreeNode*& head : free_lists_) {
      head = nullptr;
    }
    chunk_index_ = 0;
    cursor_ = 0;
    ++stats_.resets;
    return true;
  }

  std::uint64_t live() const { return live_; }
  std::uint64_t reserved() const { return stats_.chunk_bytes; }
  const Stats& stats() const { return stats_; }
  // Cross-thread frees (counted, not recycled); the only counter that may
  // be touched off the owning thread, hence atomic.
  std::uint64_t foreign_frees() const {
    return foreign_frees_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultChunkBytes = 256 * 1024;

 private:
  friend class ArenaScope;

  struct Header {
    SpecArena* owner;
    std::int64_t size_class;  // pads the header to 16 bytes
  };
  struct FreeNode {
    FreeNode* next;
  };
  struct Chunk {
    std::uint8_t* base;
    std::size_t size;
  };

  static constexpr std::size_t kHeaderBytes = sizeof(Header);
  static constexpr std::size_t kHeaderAlign = alignof(std::max_align_t);
  static_assert(kHeaderBytes == 16, "header must preserve 16-byte alignment");

  static constexpr std::size_t ClassBytes(int cls) {
    return kMinClassBytes << cls;
  }
  static int ClassOf(std::size_t bytes) {
    std::size_t rounded = kMinClassBytes;
    for (int cls = 0; cls < static_cast<int>(kClassCount); ++cls) {
      if (bytes <= rounded) {
        return cls;
      }
      rounded <<= 1;
    }
    return -1;  // oversize: heap fallback
  }

  void Release(Header* h) {
    if (std::this_thread::get_id() != owner_) {
      // Cross-thread free: recycling through the unsynchronized free list
      // would race, so the block is counted and dropped. Its chunk memory
      // is only reclaimed once the owner's live count reaches zero again —
      // the worst case is a refused Reset, never a race.
      foreign_frees_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    FreeNode* node = reinterpret_cast<FreeNode*>(h);
    node->next = free_lists_[h->size_class];
    free_lists_[h->size_class] = node;
    --live_;
  }

  bool Advance(std::size_t need) {
    while (chunk_index_ + 1 < chunks_.size()) {
      ++chunk_index_;
      cursor_ = 0;
      if (chunks_[chunk_index_].size >= need) {
        return true;
      }
    }
    return false;
  }

  void AddChunk() {
    Chunk c;
    c.size = chunk_bytes_;
    c.base = static_cast<std::uint8_t*>(
        ::operator new(c.size, std::align_val_t{kHeaderAlign}));
    chunks_.push_back(c);
    stats_.chunk_bytes += c.size;
    ++stats_.chunks;
  }

  std::size_t chunk_bytes_;
  std::thread::id owner_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;
  std::size_t cursor_ = 0;
  FreeNode* free_lists_[kClassCount] = {};
  std::uint64_t live_ = 0;
  Stats stats_;
  std::atomic<std::uint64_t> foreign_frees_{0};
};

// RAII install of an arena as the thread's current spec-allocation target.
// Scopes nest; each restores its predecessor.
class ArenaScope {
 public:
  explicit ArenaScope(std::shared_ptr<SpecArena> arena)
      : previous_(std::move(MutableCurrent())) {
    MutableCurrent() = std::move(arena);
  }
  ~ArenaScope() { MutableCurrent() = std::move(previous_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  friend class SpecArena;
  static std::shared_ptr<SpecArena>& MutableCurrent();

  std::shared_ptr<SpecArena> previous_;
};

inline std::shared_ptr<SpecArena>& ArenaScope::MutableCurrent() {
  thread_local std::shared_ptr<SpecArena> current;
  return current;
}

inline const std::shared_ptr<SpecArena>& SpecArena::Current() {
  return ArenaScope::MutableCurrent();
}

// Minimal-interface allocator routing through the thread's current arena at
// construction time (captured, so a container keeps drawing from — and
// keeps alive — the arena it was born under even after the scope ends).
// A default-constructed allocator outside any scope is the global heap.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned types cannot live in a SpecArena");

  ArenaAllocator() : arena_(SpecArena::Current()) {}
  explicit ArenaAllocator(std::shared_ptr<SpecArena> arena)
      : arena_(std::move(arena)) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    std::size_t bytes = n * sizeof(T);
    if (arena_) {
      return static_cast<T*>(arena_->Allocate(bytes));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t) {
    if (arena_) {
      SpecArena::Deallocate(p);
      return;
    }
    ::operator delete(p);
  }

  const std::shared_ptr<SpecArena>& arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_.get() == other.arena().get();
  }

 private:
  std::shared_ptr<SpecArena> arena_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_ARENA_H_
