#include "src/vstd/check.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace atmo {
namespace {

CheckHandler& CurrentHandler() {
  static CheckHandler handler;  // empty => default abort behaviour
  return handler;
}

}  // namespace

std::string CheckEvent::Format() const {
  std::string out = "verification failure at ";
  out += file != nullptr ? file : "<unknown>";
  out += ":" + std::to_string(line);
  out += ": obligation `" + condition + "` failed";
  if (!message.empty()) {
    out += " — " + message;
  }
  return out;
}

CheckHandler SetCheckHandler(CheckHandler handler) {
  return std::exchange(CurrentHandler(), std::move(handler));
}

void ReportCheckFailure(const CheckEvent& event) {
  if (CurrentHandler()) {
    CurrentHandler()(event);
  }
  // The handler is expected to throw; if it returned (or none is installed),
  // a verification failure is fatal.
  std::fprintf(stderr, "%s\n", event.Format().c_str());
  std::abort();
}

ScopedThrowOnCheckFailure::ScopedThrowOnCheckFailure() {
  previous_ = SetCheckHandler([](const CheckEvent& event) { throw CheckViolation(event); });
}

ScopedThrowOnCheckFailure::~ScopedThrowOnCheckFailure() { SetCheckHandler(previous_); }

namespace check_internal {

void Fail(const char* file, int line, const char* condition, const std::string& msg) {
  CheckEvent event;
  event.file = file;
  event.line = line;
  event.condition = condition;
  event.message = msg;
  ReportCheckFailure(event);
  std::abort();  // not reached; ReportCheckFailure does not return
}

}  // namespace check_internal
}  // namespace atmo
