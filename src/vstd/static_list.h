// StaticList<T, N> — a fixed-capacity doubly-linked list with internal
// storage.
//
// Kernel objects in Atmosphere are page-sized, so their embedded collections
// (a container's children, a process's threads, an endpoint's wait queue)
// are bounded arrays threaded as doubly-linked lists — the paper's "internal
// storage" design. Links are slot indices, not heap pointers, so the whole
// structure is trivially copyable and lives inside the owning object.
//
// Push returns the slot index of the new node; holders may store it as a
// reverse pointer for O(1) removal (the same trick the paper's page metadata
// array uses to unlink pages from free lists in constant time).

#ifndef ATMO_SRC_VSTD_STATIC_LIST_H_
#define ATMO_SRC_VSTD_STATIC_LIST_H_

#include <array>
#include <cstdint>

#include "src/vstd/check.h"
#include "src/vstd/spec_seq.h"

namespace atmo {

inline constexpr std::uint32_t kStaticListNil = 0xffffffffu;

template <typename T, std::size_t N>
class StaticList {
 public:
  StaticList() {
    // All slots start on the internal free chain (singly linked via next).
    for (std::size_t i = 0; i < N; ++i) {
      slots_[i].next = static_cast<std::uint32_t>(i + 1);
      slots_[i].prev = kStaticListNil;
      slots_[i].used = false;
    }
    if constexpr (N > 0) {
      slots_[N - 1].next = kStaticListNil;
    }
    free_head_ = N > 0 ? 0 : kStaticListNil;
  }

  std::size_t len() const { return len_; }
  bool empty() const { return len_ == 0; }
  bool full() const { return len_ == N; }
  static constexpr std::size_t capacity() { return N; }

  // Appends `value`; returns the slot index (stable until removal).
  std::uint32_t PushBack(const T& value) {
    std::uint32_t slot = AllocSlot();
    slots_[slot].value = value;
    slots_[slot].prev = tail_;
    slots_[slot].next = kStaticListNil;
    if (tail_ != kStaticListNil) {
      slots_[tail_].next = slot;
    } else {
      head_ = slot;
    }
    tail_ = slot;
    ++len_;
    return slot;
  }

  // Prepends `value`; returns the slot index.
  std::uint32_t PushFront(const T& value) {
    std::uint32_t slot = AllocSlot();
    slots_[slot].value = value;
    slots_[slot].prev = kStaticListNil;
    slots_[slot].next = head_;
    if (head_ != kStaticListNil) {
      slots_[head_].prev = slot;
    } else {
      tail_ = slot;
    }
    head_ = slot;
    ++len_;
    return slot;
  }

  T PopFront() {
    ATMO_CHECK(head_ != kStaticListNil, "StaticList::PopFront on empty list");
    std::uint32_t slot = head_;
    T out = slots_[slot].value;
    Remove(slot);
    return out;
  }

  // O(1) removal by slot index (reverse-pointer removal).
  void Remove(std::uint32_t slot) {
    ATMO_CHECK(slot < N && slots_[slot].used, "StaticList::Remove of unused slot");
    std::uint32_t prev = slots_[slot].prev;
    std::uint32_t next = slots_[slot].next;
    if (prev != kStaticListNil) {
      slots_[prev].next = next;
    } else {
      head_ = next;
    }
    if (next != kStaticListNil) {
      slots_[next].prev = prev;
    } else {
      tail_ = prev;
    }
    FreeSlot(slot);
    --len_;
  }

  const T& Front() const {
    ATMO_CHECK(head_ != kStaticListNil, "StaticList::Front on empty list");
    return slots_[head_].value;
  }

  const T& At(std::uint32_t slot) const {
    ATMO_CHECK(slot < N && slots_[slot].used, "StaticList::At of unused slot");
    return slots_[slot].value;
  }

  // Linear search; returns the slot index or kStaticListNil.
  std::uint32_t Find(const T& value) const {
    for (std::uint32_t cur = head_; cur != kStaticListNil; cur = slots_[cur].next) {
      if (slots_[cur].value == value) {
        return cur;
      }
    }
    return kStaticListNil;
  }

  bool Contains(const T& value) const { return Find(value) != kStaticListNil; }

  // Removes the first node holding `value`; verification failure if absent.
  void RemoveValue(const T& value) {
    std::uint32_t slot = Find(value);
    ATMO_CHECK(slot != kStaticListNil, "StaticList::RemoveValue of absent value");
    Remove(slot);
  }

  // Ghost view: the list contents as a sequence, head to tail.
  SpecSeq<T> View() const {
    SpecSeq<T> out;
    for (std::uint32_t cur = head_; cur != kStaticListNil; cur = slots_[cur].next) {
      out = out.push(slots_[cur].value);
    }
    return out;
  }

  // Structural well-formedness of the link fields themselves: prev/next are
  // mutually consistent and len matches the reachable chain. Invariant
  // checks call this per object.
  bool LinksWf() const {
    std::size_t count = 0;
    std::uint32_t prev = kStaticListNil;
    for (std::uint32_t cur = head_; cur != kStaticListNil; cur = slots_[cur].next) {
      if (cur >= N || !slots_[cur].used || slots_[cur].prev != prev) {
        return false;
      }
      prev = cur;
      if (++count > N) {
        return false;  // cycle
      }
    }
    return prev == tail_ && count == len_;
  }

  friend bool operator==(const StaticList& a, const StaticList& b) {
    return a.View() == b.View();
  }

  // Iteration (values only, head to tail).
  class ConstIter {
   public:
    ConstIter(const StaticList* list, std::uint32_t slot) : list_(list), slot_(slot) {}
    const T& operator*() const { return list_->slots_[slot_].value; }
    ConstIter& operator++() {
      slot_ = list_->slots_[slot_].next;
      return *this;
    }
    friend bool operator==(const ConstIter& a, const ConstIter& b) { return a.slot_ == b.slot_; }

   private:
    const StaticList* list_;
    std::uint32_t slot_;
  };

  ConstIter begin() const { return ConstIter(this, head_); }
  ConstIter end() const { return ConstIter(this, kStaticListNil); }

 private:
  struct Slot {
    T value{};
    std::uint32_t prev = kStaticListNil;
    std::uint32_t next = kStaticListNil;
    bool used = false;
  };

  std::uint32_t AllocSlot() {
    ATMO_CHECK(free_head_ != kStaticListNil, "StaticList capacity exhausted");
    std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next;
    slots_[slot].used = true;
    return slot;
  }

  void FreeSlot(std::uint32_t slot) {
    slots_[slot].used = false;
    slots_[slot].prev = kStaticListNil;
    slots_[slot].next = free_head_;
    free_head_ = slot;
  }

  std::array<Slot, N> slots_;
  std::uint32_t head_ = kStaticListNil;
  std::uint32_t tail_ = kStaticListNil;
  std::uint32_t free_head_ = kStaticListNil;
  std::size_t len_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_STATIC_LIST_H_
