// Clang thread-safety annotations + a minimally annotated mutex.
//
// The sweep harness is deliberately almost share-nothing: workers pull shard
// indices off one atomic counter and write disjoint slots. The one piece of
// genuinely shared mutable state — live sweep progress (SweepProgress) — is
// guarded by the annotated Mutex below, so Clang's -Wthread-safety analysis
// proves at compile time that every access holds the lock. This is the
// static half of the race story: TSan needs a full sweep to observe a race,
// the analysis rejects the program in seconds without running it.
//
// The macros expand to Clang attributes when available and to nothing under
// GCC/MSVC, so annotated code stays portable. See
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for the attribute
// semantics; the CI clang build compiles with -Werror=thread-safety.

#ifndef ATMO_SRC_VSTD_THREAD_ANNOTATIONS_H_
#define ATMO_SRC_VSTD_THREAD_ANNOTATIONS_H_

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define ATMO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define ATMO_THREAD_ANNOTATION(x)
#endif

#define ATMO_CAPABILITY(x) ATMO_THREAD_ANNOTATION(capability(x))
#define ATMO_SCOPED_CAPABILITY ATMO_THREAD_ANNOTATION(scoped_lockable)
#define ATMO_GUARDED_BY(x) ATMO_THREAD_ANNOTATION(guarded_by(x))
#define ATMO_PT_GUARDED_BY(x) ATMO_THREAD_ANNOTATION(pt_guarded_by(x))
#define ATMO_REQUIRES(...) ATMO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ATMO_ACQUIRE(...) ATMO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ATMO_RELEASE(...) ATMO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define ATMO_EXCLUDES(...) ATMO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ATMO_RETURN_CAPABILITY(x) ATMO_THREAD_ANNOTATION(lock_returned(x))
#define ATMO_NO_THREAD_SAFETY_ANALYSIS ATMO_THREAD_ANNOTATION(no_thread_safety_analysis)

// Hot-path root marker for averif-lint's interprocedural purity rules
// (hot-path-alloc, payload-copy — DESIGN.md §16). Expands to nothing: the
// compiler ignores it, the lint treats the annotated function as a
// reachability root for the named rule. Place it between the parameter list
// and the body, like the thread-safety attributes:
//   SyscallRet ExecBatch(ThrdPtr t, const Syscall& call) ATMO_HOT_PATH(hot-path-alloc) { ... }
#define ATMO_HOT_PATH(rule)

namespace atmo {

// std::mutex with the capability attribute, so members can be GUARDED_BY it
// and functions can state REQUIRES/EXCLUDES contracts the compiler checks.
class ATMO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ATMO_ACQUIRE() { mu_.lock(); }
  void Unlock() ATMO_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// RAII lock whose scope the analysis understands (scoped_lockable).
class ATMO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ATMO_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() ATMO_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_THREAD_ANNOTATIONS_H_
