// Runtime check infrastructure — the failure channel of the verification
// harness.
//
// Verus rejects a program at compile time when a proof obligation fails. The
// C++ executable model instead evaluates the same obligations at runtime; a
// failed obligation is routed through the handler installed here. The default
// handler prints the obligation and aborts (a "verification failure"). Tests
// install a throwing handler so that failure-injection cases can assert that
// the harness catches deliberate violations.

#ifndef ATMO_SRC_VSTD_CHECK_H_
#define ATMO_SRC_VSTD_CHECK_H_

#include <functional>
#include <stdexcept>
#include <string>

namespace atmo {

// Description of one failed proof obligation.
struct CheckEvent {
  const char* file = nullptr;
  int line = 0;
  std::string condition;
  std::string message;

  std::string Format() const;
};

// Exception type thrown by the throwing handler (used in tests).
class CheckViolation : public std::runtime_error {
 public:
  explicit CheckViolation(const CheckEvent& event)
      : std::runtime_error(event.Format()), event_(event) {}

  const CheckEvent& event() const { return event_; }

 private:
  CheckEvent event_;
};

using CheckHandler = std::function<void(const CheckEvent&)>;

// Installs `handler` as the process-wide failure handler and returns the
// previous one. Passing a null handler restores the default abort handler.
CheckHandler SetCheckHandler(CheckHandler handler);

// Reports a failed obligation through the current handler. If the handler
// returns (it should either abort or throw), this aborts.
[[noreturn]] void ReportCheckFailure(const CheckEvent& event);

// RAII guard that makes check failures throw CheckViolation for its lifetime.
// Used by tests that deliberately violate permissions/invariants.
class ScopedThrowOnCheckFailure {
 public:
  ScopedThrowOnCheckFailure();
  ~ScopedThrowOnCheckFailure();

  ScopedThrowOnCheckFailure(const ScopedThrowOnCheckFailure&) = delete;
  ScopedThrowOnCheckFailure& operator=(const ScopedThrowOnCheckFailure&) = delete;

 private:
  CheckHandler previous_;
};

namespace check_internal {
[[noreturn]] void Fail(const char* file, int line, const char* condition, const std::string& msg);
}  // namespace check_internal

}  // namespace atmo

// Proof-obligation check. `cond` is the obligation; `msg` names it.
#define ATMO_CHECK(cond, msg)                                             \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::atmo::check_internal::Fail(__FILE__, __LINE__, #cond, (msg));     \
    }                                                                     \
  } while (false)

// Obligation that always fails when reached.
#define ATMO_FAIL(msg) ::atmo::check_internal::Fail(__FILE__, __LINE__, "unreachable", (msg))

#endif  // ATMO_SRC_VSTD_CHECK_H_
