// SpecSet<T> — executable analog of Verus `Set<T>`.
//
// Copy-on-write structural sharing, mirroring SpecMap: copies are O(1),
// mutation detaches a private rep, and equality / subset / disjointness
// short-circuit when two sets share a rep. A null rep denotes the empty set.
// Reps are arena-backed under an ArenaScope, heap-backed otherwise — same
// allocation discipline as SpecMap (src/vstd/arena.h).

#ifndef ATMO_SRC_VSTD_SPEC_SET_H_
#define ATMO_SRC_VSTD_SPEC_SET_H_

#include <functional>
#include <initializer_list>
#include <memory>
#include <set>

#include "src/vstd/arena.h"

namespace atmo {

template <typename T>
class SpecSet {
 public:
  SpecSet() = default;
  SpecSet(std::initializer_list<T> init) {
    if (init.size() != 0) {
      NodeAlloc alloc;
      rep_ = std::allocate_shared<Rep>(alloc, init, std::less<T>(), alloc);
    }
  }

  bool contains(const T& t) const { return rep_ && rep_->find(t) != rep_->end(); }
  std::size_t size() const { return rep_ ? rep_->size() : 0; }
  bool empty() const { return !rep_ || rep_->empty(); }

  SpecSet insert(const T& t) const {
    SpecSet out = *this;
    out.add(t);
    return out;
  }

  SpecSet remove(const T& t) const {
    SpecSet out = *this;
    out.erase(t);
    return out;
  }

  // In-place variants. Both are no-ops (keeping the rep shared) when the
  // element is already present / absent.
  void add(const T& t) {
    if (contains(t)) {
      return;
    }
    // averif-lint: allow(hot-path-alloc) — reached only via SysNewContainer (cold spawn); checker-side inserts run under ArenaScope and land in the SpecArena
    Detach().insert(t);
  }
  void erase(const T& t) {
    if (!contains(t)) {
      return;
    }
    Detach().erase(t);
  }

  SpecSet Union(const SpecSet& other) const {
    if (other.empty() || SharesRepWith(other)) {
      return *this;
    }
    if (empty()) {
      return other;
    }
    SpecSet out = *this;
    out.Detach().insert(other.rep_->begin(), other.rep_->end());
    return out;
  }

  SpecSet Intersect(const SpecSet& other) const {
    if (SharesRepWith(other)) {
      return *this;
    }
    SpecSet out;
    for (const T& t : view()) {
      if (other.contains(t)) {
        out.add(t);
      }
    }
    return out;
  }

  SpecSet Difference(const SpecSet& other) const {
    if (SharesRepWith(other)) {
      return SpecSet{};
    }
    SpecSet out;
    for (const T& t : view()) {
      if (!other.contains(t)) {
        out.add(t);
      }
    }
    return out;
  }

  bool IsSubsetOf(const SpecSet& other) const {
    if (SharesRepWith(other)) {
      return true;
    }
    for (const T& t : view()) {
      if (!other.contains(t)) {
        return false;
      }
    }
    return true;
  }

  // Pairwise disjointness: no element in common.
  bool IsDisjointFrom(const SpecSet& other) const {
    if (empty() || other.empty()) {
      return true;
    }
    if (SharesRepWith(other)) {
      return false;  // shared non-empty rep: every element is common
    }
    // Iterate the smaller side.
    const SpecSet& small = size() <= other.size() ? *this : other;
    const SpecSet& large = size() <= other.size() ? other : *this;
    for (const T& t : small.view()) {
      if (large.contains(t)) {
        return false;
      }
    }
    return true;
  }

  template <typename Pred>
  bool ForAll(Pred p) const {
    for (const T& t : view()) {
      if (!p(t)) {
        return false;
      }
    }
    return true;
  }

  template <typename Pred>
  bool Exists(Pred p) const {
    for (const T& t : view()) {
      if (p(t)) {
        return true;
      }
    }
    return false;
  }

  // True when both sets share one rep: equal by construction, O(1).
  bool SharesRepWith(const SpecSet& other) const { return rep_ == other.rep_; }

  friend bool operator==(const SpecSet& a, const SpecSet& b) {
    if (a.rep_ == b.rep_) {
      return true;
    }
    return a.view() == b.view();
  }

  auto begin() const { return view().begin(); }
  auto end() const { return view().end(); }

 private:
  using NodeAlloc = ArenaAllocator<T>;
  using Rep = std::set<T, std::less<T>, NodeAlloc>;

  const Rep& view() const {
    static const Rep kEmpty{NodeAlloc(nullptr)};
    return rep_ ? *rep_ : kEmpty;
  }

  // Detached reps land in the *current* scope's arena (or the heap when no
  // scope is installed) — see SpecMap::Detach for the rationale.
  Rep& Detach() {
    NodeAlloc alloc;
    if (!rep_) {
      rep_ = std::allocate_shared<Rep>(alloc, alloc);
    } else if (rep_.use_count() > 1) {
      rep_ = std::allocate_shared<Rep>(alloc, *rep_, alloc);
    }
    return *rep_;
  }

  std::shared_ptr<Rep> rep_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_SPEC_SET_H_
