// SpecSet<T> — executable analog of Verus `Set<T>`.

#ifndef ATMO_SRC_VSTD_SPEC_SET_H_
#define ATMO_SRC_VSTD_SPEC_SET_H_

#include <initializer_list>
#include <set>

namespace atmo {

template <typename T>
class SpecSet {
 public:
  SpecSet() = default;
  SpecSet(std::initializer_list<T> init) : rep_(init) {}

  bool contains(const T& t) const { return rep_.find(t) != rep_.end(); }
  std::size_t size() const { return rep_.size(); }
  bool empty() const { return rep_.empty(); }

  SpecSet insert(const T& t) const {
    SpecSet out = *this;
    out.rep_.insert(t);
    return out;
  }

  SpecSet remove(const T& t) const {
    SpecSet out = *this;
    out.rep_.erase(t);
    return out;
  }

  // In-place variants.
  void add(const T& t) { rep_.insert(t); }
  void erase(const T& t) { rep_.erase(t); }

  SpecSet Union(const SpecSet& other) const {
    SpecSet out = *this;
    out.rep_.insert(other.rep_.begin(), other.rep_.end());
    return out;
  }

  SpecSet Intersect(const SpecSet& other) const {
    SpecSet out;
    for (const T& t : rep_) {
      if (other.contains(t)) {
        out.rep_.insert(t);
      }
    }
    return out;
  }

  SpecSet Difference(const SpecSet& other) const {
    SpecSet out;
    for (const T& t : rep_) {
      if (!other.contains(t)) {
        out.rep_.insert(t);
      }
    }
    return out;
  }

  bool IsSubsetOf(const SpecSet& other) const {
    for (const T& t : rep_) {
      if (!other.contains(t)) {
        return false;
      }
    }
    return true;
  }

  // Pairwise disjointness: no element in common.
  bool IsDisjointFrom(const SpecSet& other) const {
    // Iterate the smaller side.
    const SpecSet& small = size() <= other.size() ? *this : other;
    const SpecSet& large = size() <= other.size() ? other : *this;
    for (const T& t : small.rep_) {
      if (large.contains(t)) {
        return false;
      }
    }
    return true;
  }

  template <typename Pred>
  bool ForAll(Pred p) const {
    for (const T& t : rep_) {
      if (!p(t)) {
        return false;
      }
    }
    return true;
  }

  template <typename Pred>
  bool Exists(Pred p) const {
    for (const T& t : rep_) {
      if (p(t)) {
        return true;
      }
    }
    return false;
  }

  friend bool operator==(const SpecSet& a, const SpecSet& b) { return a.rep_ == b.rep_; }

  auto begin() const { return rep_.begin(); }
  auto end() const { return rep_.end(); }

 private:
  std::set<T> rep_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_SPEC_SET_H_
