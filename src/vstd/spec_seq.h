// SpecSeq<T> — executable analog of Verus `Seq<T>`.
//
// Used for ghost sequences such as a container's `path` (the sequence of
// direct and indirect parents from the root, Listing 2).
//
// Unlike SpecMap/SpecSet the rep is a plain vector (no COW), but its storage
// follows the same arena discipline: sequences built or copied under an
// ArenaScope draw from the scope's arena, others from the heap. The copy
// operations re-choose the allocator from the *current* scope rather than
// propagating the source's, so heap-built state copied inside the checker
// lands in the checker's arena and vice versa.

#ifndef ATMO_SRC_VSTD_SPEC_SEQ_H_
#define ATMO_SRC_VSTD_SPEC_SEQ_H_

#include <algorithm>
#include <initializer_list>
#include <utility>
#include <vector>

#include "src/vstd/arena.h"
#include "src/vstd/check.h"

namespace atmo {

template <typename T>
class SpecSeq {
 public:
  SpecSeq() = default;
  SpecSeq(std::initializer_list<T> init) : rep_(init, ArenaAllocator<T>()) {}

  SpecSeq(const SpecSeq& other) : rep_(other.rep_, ArenaAllocator<T>()) {}
  SpecSeq& operator=(const SpecSeq& other) {
    if (this != &other) {
      rep_.assign(other.rep_.begin(), other.rep_.end());
    }
    return *this;
  }
  SpecSeq(SpecSeq&&) = default;
  SpecSeq& operator=(SpecSeq&&) = default;

  std::size_t len() const { return rep_.size(); }
  bool empty() const { return rep_.empty(); }

  const T& at(std::size_t i) const {
    ATMO_CHECK(i < rep_.size(), "SpecSeq::at out of range");
    return rep_[i];
  }
  const T& operator[](std::size_t i) const { return at(i); }

  const T& last() const {
    ATMO_CHECK(!rep_.empty(), "SpecSeq::last on empty sequence");
    return rep_.back();
  }

  bool contains(const T& t) const {
    return std::find(rep_.begin(), rep_.end(), t) != rep_.end();
  }

  SpecSeq push(const T& t) const {
    SpecSeq out = *this;
    // averif-lint: allow(hot-path-alloc) — reached only via SysNewContainer (cold spawn); checker-side pushes run under ArenaScope and land in the SpecArena
    out.rep_.push_back(t);
    return out;
  }

  // In-place append for linear bulk construction (run-queue abstraction).
  void append(const T& t) { rep_.push_back(t); }

  // `subrange(lo, hi)` — elements [lo, hi).
  SpecSeq subrange(std::size_t lo, std::size_t hi) const {
    ATMO_CHECK(lo <= hi && hi <= rep_.size(), "SpecSeq::subrange bounds");
    SpecSeq out;
    out.rep_.assign(rep_.begin() + static_cast<std::ptrdiff_t>(lo),
                    rep_.begin() + static_cast<std::ptrdiff_t>(hi));
    return out;
  }

  SpecSeq drop_last() const {
    ATMO_CHECK(!rep_.empty(), "SpecSeq::drop_last on empty sequence");
    return subrange(0, rep_.size() - 1);
  }

  // True if this sequence is a prefix of `other`.
  bool IsPrefixOf(const SpecSeq& other) const {
    if (rep_.size() > other.rep_.size()) {
      return false;
    }
    return std::equal(rep_.begin(), rep_.end(), other.rep_.begin());
  }

  // True if no element occurs twice.
  bool NoDuplicates() const {
    for (std::size_t i = 0; i < rep_.size(); ++i) {
      for (std::size_t j = i + 1; j < rep_.size(); ++j) {
        if (rep_[i] == rep_[j]) {
          return false;
        }
      }
    }
    return true;
  }

  template <typename Pred>
  bool ForAll(Pred p) const {
    for (const T& t : rep_) {
      if (!p(t)) {
        return false;
      }
    }
    return true;
  }

  friend bool operator==(const SpecSeq& a, const SpecSeq& b) { return a.rep_ == b.rep_; }

  auto begin() const { return rep_.begin(); }
  auto end() const { return rep_.end(); }

 private:
  std::vector<T, ArenaAllocator<T>> rep_;
};

}  // namespace atmo

#endif  // ATMO_SRC_VSTD_SPEC_SEQ_H_
