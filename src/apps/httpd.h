// Tiny web server (§6.6 "httpd").
//
// Serves static content: parses HTTP/1.1 request lines and headers from
// request payloads, looks the path up in an in-memory document table, and
// produces a full response with status line, headers, and body. The
// benchmark drives it with a wrk-like closed-loop generator.

#ifndef ATMO_SRC_APPS_HTTPD_H_
#define ATMO_SRC_APPS_HTTPD_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace atmo {

struct HttpRequest {
  std::string_view method;
  std::string_view path;
  std::string_view version;
  // Selected headers the server cares about.
  std::string_view host;
  bool keep_alive = true;
};

class Httpd {
 public:
  Httpd();

  // Registers a static document.
  void AddPage(const std::string& path, const std::string& content_type,
               const std::string& body);

  // Parses one request; false on malformed input.
  static bool ParseRequest(std::string_view text, HttpRequest* out);

  // Handles one request buffer; writes the response into `resp` (capacity
  // `cap`). Returns the response length (always > 0: errors produce 4xx).
  std::size_t HandleRequest(const std::uint8_t* req, std::size_t req_len, std::uint8_t* resp,
                            std::size_t cap);

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t errors() const { return errors_; }

 private:
  struct Page {
    std::string content_type;
    std::string body;
  };

  std::size_t WriteResponse(std::uint8_t* resp, std::size_t cap, int status,
                            std::string_view reason, std::string_view content_type,
                            std::string_view body);

  std::map<std::string, Page, std::less<>> pages_;
  std::uint64_t served_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_APPS_HTTPD_H_
