// Tiny web server (§6.6 "httpd").
//
// Serves static content: parses HTTP/1.1 request lines and headers from
// request payloads, looks the path up in an in-memory document table, and
// produces a full response with status line, headers, and body. The
// benchmark drives it with a wrk-like closed-loop generator.

#ifndef ATMO_SRC_APPS_HTTPD_H_
#define ATMO_SRC_APPS_HTTPD_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/splice.h"

namespace atmo {

struct HttpRequest {
  std::string_view method;
  std::string_view path;
  std::string_view version;
  // Selected headers the server cares about.
  std::string_view host;
  bool keep_alive = true;
};

class Httpd {
 public:
  Httpd();

  // Registers a static document.
  void AddPage(const std::string& path, const std::string& content_type,
               const std::string& body);

  // Parses one request; false on malformed input.
  static bool ParseRequest(std::string_view text, HttpRequest* out);

  // Handles one request buffer; writes the response into `resp` (capacity
  // `cap`). Returns the response length (always > 0: errors produce 4xx).
  std::size_t HandleRequest(const std::uint8_t* req, std::size_t req_len, std::uint8_t* resp,
                            std::size_t cap);

  // --- Splice serving (DESIGN.md §15) -------------------------------------
  //
  // Static documents have static responses, so a GET can be answered by a
  // response that was rendered into DMA memory once at setup and transmitted
  // in place forever after — zero payload bytes move at request time. Each
  // document gets kSpliceReplicas pre-rendered copies used round-robin:
  // the per-request frame headers are written into the slice headroom, so a
  // replica must not be handed out again while a frame built on it can still
  // be in flight. 32 replicas cover a full 32-deep TX flush window.
  static constexpr std::size_t kSpliceStride = 1024;  // divides 4 KiB: no page straddle
  static constexpr std::size_t kSpliceReplicas = 32;

  // DMA pages the splice table needs (4 slices per 4 KiB page). Call
  // AddSplicePage once per page AFTER all AddPage calls.
  std::size_t SplicePagesNeeded() const;

  // Donates one 4 KiB DMA page (`base` = CPU pointer, `iova` = device
  // address) and renders full responses into its slices, leaving `headroom`
  // bytes in front of each for frame headers. Slices are assigned to
  // documents round-robin across calls.
  void AddSplicePage(std::uint8_t* base, VAddr iova, std::size_t headroom);

  // Zero-copy fast path: a GET for a known document returns the next
  // pre-rendered replica (no bytes written). Anything else — parse errors,
  // HEAD, unknown paths — returns nullopt and the caller falls back to
  // HandleRequest, which also does the error accounting. A nonzero
  // `trace_id` (from the RX view) stamps a "stage.app" instant and rides the
  // returned slice into the in-place TX commit.
  std::optional<SpliceSlice> HandleRequestSpliced(const std::uint8_t* req, std::size_t req_len,
                                                  std::uint64_t trace_id = 0);

  std::uint64_t requests_served() const { return served_; }
  std::uint64_t errors() const { return errors_; }

 private:
  struct Page {
    std::string content_type;
    std::string body;
    std::vector<SpliceSlice> slices;  // pre-rendered replicas, used round-robin
    std::size_t next_slice = 0;
  };

  std::size_t WriteResponse(std::uint8_t* resp, std::size_t cap, int status,
                            std::string_view reason, std::string_view content_type,
                            std::string_view body);

  std::map<std::string, Page, std::less<>> pages_;
  std::size_t splice_slices_added_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_APPS_HTTPD_H_
