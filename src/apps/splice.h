// Splice serving (DESIGN.md §15): responses pre-rendered into DMA-visible
// memory so a request is answered by pointing a TX descriptor at bytes that
// already exist — no payload memcpy at request time.
//
// The contract mirrors the kernel's borrow grant: the application holds the
// RX payload as a read-only borrowed view, computes which pre-rendered
// response answers it, writes ONLY the per-request frame headers into the
// slice's reserved headroom (header assembly is generation, not copying),
// and hands the slice's IOVA to the driver (TxInPlaceDeferred).

#ifndef ATMO_SRC_APPS_SPLICE_H_
#define ATMO_SRC_APPS_SPLICE_H_

#include <cstddef>
#include <cstdint>

#include "src/vstd/types.h"

namespace atmo {

// A transmittable pre-rendered response. `frame` points at the slice base
// (headroom first — the caller writes Ethernet/IP/UDP headers there), the
// response payload already sits at frame + headroom, and `iova` is the
// device address of `frame` for an in-place TX descriptor.
struct SpliceSlice {
  std::uint8_t* frame = nullptr;
  VAddr iova = 0;
  std::size_t resp_len = 0;  // response payload bytes (after the headroom)
  // Causal trace id of the request this slice answers (0 = unsampled),
  // threaded from the RX view through HandleRequestSpliced so the in-place
  // TX commit can close the chain with its "stage.tx" instant.
  std::uint64_t trace_id = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_APPS_SPLICE_H_
