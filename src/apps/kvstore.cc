#include "src/apps/kvstore.h"

#include "src/obs/copy_probe.h"
#include "src/obs/flight_recorder.h"
#include "src/vstd/check.h"
#include "src/vstd/thread_annotations.h"

namespace atmo {

namespace {

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t out = 1;
  while (out < v) {
    out <<= 1;
  }
  return out;
}

}  // namespace

KvStore::KvStore(std::size_t capacity)
    : slots_(RoundUpPow2(capacity)), mask_(RoundUpPow2(capacity) - 1) {
  ATMO_CHECK(capacity >= 2, "kv-store capacity too small");
}

std::size_t KvStore::Probe(std::string_view key, bool for_insert) const {
  std::size_t index = Fnv1a(key.data(), key.size()) & mask_;
  std::size_t first_tombstone = SIZE_MAX;
  for (std::size_t step = 0; step <= mask_; ++step) {
    const Entry& entry = slots_[index];
    if (entry.state == 0) {
      if (for_insert && first_tombstone != SIZE_MAX) {
        return first_tombstone;
      }
      return index;  // empty: miss (or insertion point)
    }
    if (entry.state == 2) {
      if (for_insert && first_tombstone == SIZE_MAX) {
        first_tombstone = index;
      }
    } else if (entry.key_len == key.size() &&
               std::memcmp(entry.key, key.data(), key.size()) == 0) {
      return index;  // hit
    }
    index = (index + 1) & mask_;  // linear probing
  }
  return for_insert && first_tombstone != SIZE_MAX ? first_tombstone : SIZE_MAX;
}

bool KvStore::Set(std::string_view key, std::string_view value) {
  if (key.empty() || key.size() > kKvMaxKey || value.size() > kKvMaxValue) {
    return false;
  }
  if (size_ >= capacity() - 1) {
    // Keep one slot free so probes terminate.
    std::size_t existing = Probe(key, /*for_insert=*/false);
    if (existing == SIZE_MAX || slots_[existing].state != 1) {
      return false;
    }
  }
  std::size_t index = Probe(key, /*for_insert=*/true);
  if (index == SIZE_MAX) {
    return false;
  }
  Entry& entry = slots_[index];
  if (entry.state != 1) {
    ++size_;
  }
  entry.state = 1;
  entry.key_len = static_cast<std::uint8_t>(key.size());
  entry.val_len = static_cast<std::uint8_t>(value.size());
  std::memcpy(entry.key, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(entry.value, value.data(), value.size());
  }
  RenderSlice(index);
  return true;
}

SpliceSlice KvStore::SlotSlice(std::size_t index) const {
  constexpr std::size_t kPerPage = 4096 / kSpliceStride;
  std::size_t offset = (index % kPerPage) * kSpliceStride;
  const Entry& entry = slots_[index];
  return SpliceSlice{splice_bases_[index / kPerPage] + offset,
                     splice_iovas_[index / kPerPage] + offset,
                     std::size_t{2} + entry.val_len};
}

void KvStore::RenderSlice(std::size_t index) {
  constexpr std::size_t kPerPage = 4096 / kSpliceStride;
  if (index / kPerPage >= splice_bases_.size()) {
    return;  // slab absent or not (yet) covering this slot
  }
  const Entry& entry = slots_[index];
  std::uint8_t* resp = SlotSlice(index).frame + splice_headroom_;
  resp[0] = kKvOk;
  resp[1] = entry.val_len;
  // Store ingestion, like the Entry::value write above — not a request-time
  // payload copy, so plain memcpy rather than obs::CopyPayload.
  std::memcpy(resp + 2, entry.value, entry.val_len);
}

void KvStore::AddSplicePage(std::uint8_t* base, VAddr iova, std::size_t headroom) {
  constexpr std::size_t kPerPage = 4096 / kSpliceStride;
  ATMO_CHECK(headroom + 2 + kKvMaxValue <= kSpliceStride, "kv splice headroom too large");
  ATMO_CHECK(splice_bases_.empty() || splice_headroom_ == headroom,
             "kv splice headroom changed between pages");
  ATMO_CHECK(splice_bases_.size() < SplicePagesNeeded(), "kv splice slab over-provisioned");
  splice_headroom_ = headroom;
  splice_bases_.push_back(base);
  splice_iovas_.push_back(iova);
  std::size_t first = (splice_bases_.size() - 1) * kPerPage;
  for (std::size_t i = first; i < first + kPerPage; ++i) {
    if (slots_[i].state == 1) {
      RenderSlice(i);  // entries that predate the slab
    }
  }
}

std::optional<SpliceSlice> KvStore::HandleRequestSpliced(const std::uint8_t* req,
                                                         std::size_t req_len,
                                                         std::uint64_t trace_id)
    ATMO_HOT_PATH(payload-copy) {
  if (trace_id != 0) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.app", "trace_id", trace_id);
  }
  constexpr std::size_t kPerPage = 4096 / kSpliceStride;
  if (req_len < 3 || req[0] != kKvGet) {
    return std::nullopt;
  }
  std::size_t key_len = req[1];
  if (key_len == 0 || key_len > kKvMaxKey || 3 + key_len > req_len) {
    return std::nullopt;
  }
  std::string_view key(reinterpret_cast<const char*>(req + 3), key_len);
  std::size_t index = Probe(key, /*for_insert=*/false);
  if (index == SIZE_MAX || slots_[index].state != 1 ||
      index / kPerPage >= splice_bases_.size()) {
    return std::nullopt;  // miss or uncovered slot: HandleRequest path
  }
  SpliceSlice slice = SlotSlice(index);
  slice.trace_id = trace_id;
  return slice;
}

std::optional<std::string_view> KvStore::Get(std::string_view key) const {
  if (key.empty() || key.size() > kKvMaxKey) {
    return std::nullopt;
  }
  std::size_t index = Probe(key, /*for_insert=*/false);
  if (index == SIZE_MAX || slots_[index].state != 1) {
    return std::nullopt;
  }
  const Entry& entry = slots_[index];
  return std::string_view(reinterpret_cast<const char*>(entry.value), entry.val_len);
}

bool KvStore::Del(std::string_view key) {
  if (key.empty() || key.size() > kKvMaxKey) {
    return false;
  }
  std::size_t index = Probe(key, /*for_insert=*/false);
  if (index == SIZE_MAX || slots_[index].state != 1) {
    return false;
  }
  slots_[index].state = 2;  // tombstone
  --size_;
  return true;
}

std::size_t KvStore::HandleRequest(const std::uint8_t* req, std::size_t req_len,
                                   std::uint8_t* resp) {
  auto bad = [&resp] {
    resp[0] = kKvBadRequest;
    resp[1] = 0;
    return std::size_t{2};
  };
  if (req_len < 3) {
    return bad();
  }
  std::uint8_t op = req[0];
  std::size_t key_len = req[1];
  std::size_t val_len = req[2];
  if (key_len == 0 || key_len > kKvMaxKey || val_len > kKvMaxValue ||
      3 + key_len + val_len > req_len) {
    return bad();
  }
  std::string_view key(reinterpret_cast<const char*>(req + 3), key_len);
  std::string_view value(reinterpret_cast<const char*>(req + 3 + key_len), val_len);

  switch (op) {
    case kKvGet: {
      std::optional<std::string_view> hit = Get(key);
      if (!hit.has_value()) {
        resp[0] = kKvMiss;
        resp[1] = 0;
        return 2;
      }
      resp[0] = kKvOk;
      resp[1] = static_cast<std::uint8_t>(hit->size());
      // The value staging copy the splice slab eliminates for GET hits.
      obs::CopyPayload(resp + 2, hit->data(), hit->size());
      return 2 + hit->size();
    }
    case kKvSet: {
      resp[0] = Set(key, value) ? kKvOk : kKvFull;
      resp[1] = 0;
      return 2;
    }
    case kKvDel: {
      resp[0] = Del(key) ? kKvOk : kKvMiss;
      resp[1] = 0;
      return 2;
    }
    default:
      return bad();
  }
}

std::size_t KvStore::BuildRequest(std::uint8_t* buf, std::uint8_t op, std::string_view key,
                                  std::string_view value) {
  buf[0] = op;
  buf[1] = static_cast<std::uint8_t>(key.size());
  buf[2] = static_cast<std::uint8_t>(value.size());
  std::memcpy(buf + 3, key.data(), key.size());
  if (!value.empty()) {
    std::memcpy(buf + 3 + key.size(), value.data(), value.size());
  }
  return 3 + key.size() + value.size();
}

}  // namespace atmo
