// Network-attached key-value store (§6.6 "kv-store").
//
// An open-addressing hash table with linear probing and the FNV hash
// function, exactly as the paper describes, with fixed-size inline entries
// so the probe sequence touches contiguous memory (the structure whose
// performance the paper measures at 1M and 8M entries across key/value
// sizes 8/16/32 bytes).
//
// A small binary wire protocol rides UDP payloads:
//   request : op(1) keylen(1) vallen(1) key[keylen] value[vallen]
//   response: status(1) vallen(1) value[vallen]
//   ops     : 1 = GET, 2 = SET, 3 = DEL

#ifndef ATMO_SRC_APPS_KVSTORE_H_
#define ATMO_SRC_APPS_KVSTORE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string_view>
#include <vector>

#include "src/apps/splice.h"
#include "src/net/packet.h"

namespace atmo {

inline constexpr std::uint8_t kKvGet = 1;
inline constexpr std::uint8_t kKvSet = 2;
inline constexpr std::uint8_t kKvDel = 3;

inline constexpr std::uint8_t kKvOk = 0;
inline constexpr std::uint8_t kKvMiss = 1;
inline constexpr std::uint8_t kKvFull = 2;
inline constexpr std::uint8_t kKvBadRequest = 3;

inline constexpr std::size_t kKvMaxKey = 32;
inline constexpr std::size_t kKvMaxValue = 32;

class KvStore {
 public:
  // `capacity` slots (rounded up to a power of two).
  explicit KvStore(std::size_t capacity);

  bool Set(std::string_view key, std::string_view value);
  std::optional<std::string_view> Get(std::string_view key) const;
  bool Del(std::string_view key);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return mask_ + 1; }

  // Handles one request datagram; writes the response into `resp`
  // (capacity >= 2 + kKvMaxValue). Returns the response length.
  std::size_t HandleRequest(const std::uint8_t* req, std::size_t req_len, std::uint8_t* resp);

  // --- Splice serving (DESIGN.md §15) -------------------------------------
  //
  // A slot-indexed response slab in DMA memory: Set() renders the GET-hit
  // response {kKvOk, val_len, value} into slot i's slice at write time, so a
  // GET hit is answered by pointing a TX descriptor at bytes that already
  // exist — no value memcpy at request time. The Set-time render is store
  // ingestion (the same class of copy as writing Entry::value) and is
  // deliberately not counted by obs::CopyPayload. Stride 128 holds the
  // 42-byte frame headroom plus the 2 + kKvMaxValue response and divides
  // 4 KiB, so slices never straddle a page. Misses / SET / DEL fall back to
  // the HandleRequest copy path.
  //
  // A slot's slice carries per-request frame headers in its headroom, so it
  // must not be handed out twice inside one TX flush window; consecutive
  // distinct keys (the benchmark generator) guarantee that, and a duplicate
  // would still transmit a self-consistent frame (just the later headers).
  static constexpr std::size_t kSpliceStride = 128;  // 32 slots per 4 KiB page

  // DMA pages the slab needs (one slice per slot). Add pages in order with
  // AddSplicePage; slots already populated are rendered on arrival.
  std::size_t SplicePagesNeeded() const { return capacity() * kSpliceStride / 4096; }
  void AddSplicePage(std::uint8_t* base, VAddr iova, std::size_t headroom);

  // Zero-copy fast path: a GET that hits a slab-covered slot returns its
  // pre-rendered slice. Everything else returns nullopt (caller falls back
  // to HandleRequest). A nonzero `trace_id` (from the RX view) stamps a
  // "stage.app" instant and rides the returned slice into the TX commit.
  std::optional<SpliceSlice> HandleRequestSpliced(const std::uint8_t* req, std::size_t req_len,
                                                  std::uint64_t trace_id = 0);

  // Builds a request datagram (client side / workload generator).
  static std::size_t BuildRequest(std::uint8_t* buf, std::uint8_t op, std::string_view key,
                                  std::string_view value);

 private:
  struct Entry {
    std::uint8_t state = 0;  // 0 empty, 1 used, 2 tombstone
    std::uint8_t key_len = 0;
    std::uint8_t val_len = 0;
    std::uint8_t key[kKvMaxKey];
    std::uint8_t value[kKvMaxValue];
  };

  std::size_t Probe(std::string_view key, bool for_insert) const;
  void RenderSlice(std::size_t index);
  SpliceSlice SlotSlice(std::size_t index) const;

  std::vector<Entry> slots_;
  std::size_t mask_;
  std::size_t size_ = 0;

  // Splice slab: per-page CPU base pointers (arena pages are scattered in
  // host memory) + matching IOVAs; empty until AddSplicePage.
  std::vector<std::uint8_t*> splice_bases_;
  std::vector<VAddr> splice_iovas_;
  std::size_t splice_headroom_ = 0;
};

}  // namespace atmo

#endif  // ATMO_SRC_APPS_KVSTORE_H_
