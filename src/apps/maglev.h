// Maglev consistent-hashing load balancer (§6.6, Eisenbud et al. NSDI'16).
//
// Implements the paper's lookup-table population algorithm: each backend
// gets a permutation of table positions derived from two hashes of its name
// (offset and skip); backends take turns claiming their next unclaimed
// position until the table is full. Properties (checked by tests): the
// table is completely filled, backend shares are balanced within the
// algorithm's bound, and removing a backend only remaps entries that
// pointed at it (minimal disruption).
//
// The packet path parses the 5-tuple, hashes it, consults the lookup table
// and rewrites the destination to the chosen backend.

#ifndef ATMO_SRC_APPS_MAGLEV_H_
#define ATMO_SRC_APPS_MAGLEV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/net/packet.h"

namespace atmo {

struct MaglevBackend {
  std::string name;
  MacAddr mac{};
  std::uint32_t ip = 0;
  bool healthy = true;
};

class Maglev {
 public:
  // `table_size` must be prime (the paper uses 65537 for its small table).
  explicit Maglev(std::uint32_t table_size = 65537);

  void AddBackend(const MaglevBackend& backend);
  void SetHealthy(const std::string& name, bool healthy);
  // (Re)builds the lookup table from the healthy backends.
  void Populate();

  std::size_t backend_count() const { return backends_.size(); }
  std::uint32_t table_size() const { return table_size_; }

  // Index of the backend serving `flow` (-1 if no healthy backend).
  int Lookup(const FiveTuple& flow) const;
  const MaglevBackend& backend(int index) const { return backends_[index]; }

  // Full data-path step: parse the frame, pick a backend, rewrite the
  // destination in place. Returns the backend index or -1 (drop).
  int ForwardPacket(std::uint8_t* frame, std::size_t len);

  // Table share per backend (for the balance property test).
  std::vector<std::uint32_t> Shares() const;
  const std::vector<int>& table() const { return table_; }

 private:
  std::uint32_t table_size_;
  std::vector<MaglevBackend> backends_;
  std::vector<int> table_;  // position -> backend index
};

}  // namespace atmo

#endif  // ATMO_SRC_APPS_MAGLEV_H_
