#include "src/apps/httpd.h"

#include <cstdio>
#include <cstring>
#include <iterator>

#include "src/obs/copy_probe.h"
#include "src/obs/flight_recorder.h"
#include "src/vstd/check.h"
#include "src/vstd/thread_annotations.h"

namespace atmo {

namespace {

std::string_view TrimCr(std::string_view line) {
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  return line;
}

// Case-insensitive prefix match for header names.
bool HeaderIs(std::string_view line, std::string_view name) {
  if (line.size() < name.size() + 1) {
    return false;
  }
  for (std::size_t i = 0; i < name.size(); ++i) {
    char a = line[i];
    char b = name[i];
    if (a >= 'A' && a <= 'Z') {
      a = static_cast<char>(a - 'A' + 'a');
    }
    if (b >= 'A' && b <= 'Z') {
      b = static_cast<char>(b - 'A' + 'a');
    }
    if (a != b) {
      return false;
    }
  }
  return line[name.size()] == ':';
}

std::string_view HeaderValue(std::string_view line) {
  std::size_t colon = line.find(':');
  std::string_view value = line.substr(colon + 1);
  while (!value.empty() && value.front() == ' ') {
    value.remove_prefix(1);
  }
  return value;
}

}  // namespace

Httpd::Httpd() = default;

void Httpd::AddPage(const std::string& path, const std::string& content_type,
                    const std::string& body) {
  Page& page = pages_[path];
  page.content_type = content_type;
  page.body = body;
  page.slices.clear();  // re-registering invalidates any pre-rendered replicas
  page.next_slice = 0;
}

bool Httpd::ParseRequest(std::string_view text, HttpRequest* out) {
  std::size_t line_end = text.find('\n');
  if (line_end == std::string_view::npos) {
    return false;
  }
  std::string_view request_line = TrimCr(text.substr(0, line_end));

  std::size_t sp1 = request_line.find(' ');
  if (sp1 == std::string_view::npos) {
    return false;
  }
  std::size_t sp2 = request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return false;
  }
  out->method = request_line.substr(0, sp1);
  out->path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  out->version = request_line.substr(sp2 + 1);
  if (out->method.empty() || out->path.empty() || out->path[0] != '/') {
    return false;
  }
  if (out->version != "HTTP/1.1" && out->version != "HTTP/1.0") {
    return false;
  }
  out->keep_alive = out->version == "HTTP/1.1";

  // Headers until the blank line.
  std::string_view rest = text.substr(line_end + 1);
  while (!rest.empty()) {
    std::size_t next = rest.find('\n');
    std::string_view line = TrimCr(next == std::string_view::npos ? rest : rest.substr(0, next));
    if (line.empty()) {
      break;
    }
    if (HeaderIs(line, "host")) {
      out->host = HeaderValue(line);
    } else if (HeaderIs(line, "connection")) {
      std::string_view value = HeaderValue(line);
      out->keep_alive = value != "close";
    }
    if (next == std::string_view::npos) {
      break;
    }
    rest = rest.substr(next + 1);
  }
  return true;
}

std::size_t Httpd::WriteResponse(std::uint8_t* resp, std::size_t cap, int status,
                                 std::string_view reason, std::string_view content_type,
                                 std::string_view body) {
  char header[256];
  int header_len = std::snprintf(header, sizeof(header),
                                 "HTTP/1.1 %d %.*s\r\n"
                                 "Server: atmo-httpd/1.0\r\n"
                                 "Content-Type: %.*s\r\n"
                                 "Content-Length: %zu\r\n"
                                 "\r\n",
                                 status, static_cast<int>(reason.size()), reason.data(),
                                 static_cast<int>(content_type.size()), content_type.data(),
                                 body.size());
  std::size_t total = static_cast<std::size_t>(header_len) + body.size();
  if (total > cap) {
    return 0;
  }
  std::memcpy(resp, header, static_cast<std::size_t>(header_len));
  if (!body.empty()) {  // HEAD responses carry a null body view
    // The body staging copy — the per-request payload movement the splice
    // path exists to eliminate (the status line/header memcpy above is
    // generation: those bytes are produced here either way).
    obs::CopyPayload(resp + header_len, body.data(), body.size());
  }
  return total;
}

std::size_t Httpd::SplicePagesNeeded() const {
  return pages_.size() * kSpliceReplicas * kSpliceStride / kPageSize4K;
}

void Httpd::AddSplicePage(std::uint8_t* base, VAddr iova, std::size_t headroom) {
  ATMO_CHECK(!pages_.empty(), "httpd splice pages added before documents");
  ATMO_CHECK(headroom < kSpliceStride, "httpd splice headroom exceeds stride");
  for (std::size_t off = 0; off + kSpliceStride <= kPageSize4K; off += kSpliceStride) {
    // Interleave slices across documents so every document ends up with
    // kSpliceReplicas replicas once SplicePagesNeeded() pages are in.
    auto it = pages_.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(splice_slices_added_ % pages_.size()));
    Page& page = it->second;
    SpliceSlice slice{base + off, iova + off, 0};
    slice.resp_len = WriteResponse(slice.frame + headroom, kSpliceStride - headroom, 200, "OK",
                                   page.content_type, page.body);
    ATMO_CHECK(slice.resp_len > 0, "httpd splice response exceeds stride");
    page.slices.push_back(slice);
    ++splice_slices_added_;
  }
}

std::optional<SpliceSlice> Httpd::HandleRequestSpliced(const std::uint8_t* req,
                                                       std::size_t req_len,
                                                       std::uint64_t trace_id)
    ATMO_HOT_PATH(payload-copy) {
  if (trace_id != 0) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.app", "trace_id", trace_id);
  }
  HttpRequest parsed;
  std::string_view text(reinterpret_cast<const char*>(req), req_len);
  if (!ParseRequest(text, &parsed) || parsed.method != "GET") {
    return std::nullopt;  // fall back; HandleRequest does the accounting
  }
  auto it = pages_.find(parsed.path);
  if (it == pages_.end() || it->second.slices.empty()) {
    return std::nullopt;
  }
  Page& page = it->second;
  ++served_;
  SpliceSlice slice = page.slices[page.next_slice++ % page.slices.size()];
  slice.trace_id = trace_id;
  return slice;
}

std::size_t Httpd::HandleRequest(const std::uint8_t* req, std::size_t req_len,
                                 std::uint8_t* resp, std::size_t cap) {
  HttpRequest parsed;
  std::string_view text(reinterpret_cast<const char*>(req), req_len);
  if (!ParseRequest(text, &parsed)) {
    ++errors_;
    return WriteResponse(resp, cap, 400, "Bad Request", "text/plain", "bad request\n");
  }
  if (parsed.method != "GET" && parsed.method != "HEAD") {
    ++errors_;
    return WriteResponse(resp, cap, 405, "Method Not Allowed", "text/plain",
                         "method not allowed\n");
  }
  auto it = pages_.find(parsed.path);
  if (it == pages_.end()) {
    ++errors_;
    return WriteResponse(resp, cap, 404, "Not Found", "text/plain", "not found\n");
  }
  ++served_;
  std::string_view body = parsed.method == "HEAD" ? std::string_view{} : it->second.body;
  return WriteResponse(resp, cap, 200, "OK", it->second.content_type, body);
}

}  // namespace atmo
