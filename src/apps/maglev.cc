#include "src/apps/maglev.h"

#include "src/vstd/check.h"

namespace atmo {

Maglev::Maglev(std::uint32_t table_size) : table_size_(table_size) {
  ATMO_CHECK(table_size >= 3, "Maglev table too small");
  table_.assign(table_size_, -1);
}

void Maglev::AddBackend(const MaglevBackend& backend) { backends_.push_back(backend); }

void Maglev::SetHealthy(const std::string& name, bool healthy) {
  for (MaglevBackend& backend : backends_) {
    if (backend.name == name) {
      backend.healthy = healthy;
      return;
    }
  }
  ATMO_FAIL("Maglev: unknown backend");
}

void Maglev::Populate() {
  table_.assign(table_size_, -1);
  std::vector<int> healthy;
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i].healthy) {
      healthy.push_back(static_cast<int>(i));
    }
  }
  if (healthy.empty()) {
    return;
  }

  // Per-backend permutation state: position j of backend i's preference
  // list is (offset + j * skip) mod M.
  struct Perm {
    std::uint64_t offset;
    std::uint64_t skip;
    std::uint64_t next = 0;  // next preference index to try
  };
  std::vector<Perm> perms;
  perms.reserve(healthy.size());
  for (int idx : healthy) {
    const std::string& name = backends_[idx].name;
    std::uint64_t h1 = Fnv1a(name.data(), name.size(), 0xcbf29ce484222325ull);
    std::uint64_t h2 = Fnv1a(name.data(), name.size(), 0x100001b3cafef00dull);
    perms.push_back(Perm{h1 % table_size_, h2 % (table_size_ - 1) + 1, 0});
  }

  std::uint32_t filled = 0;
  while (filled < table_size_) {
    for (std::size_t i = 0; i < healthy.size() && filled < table_size_; ++i) {
      Perm& perm = perms[i];
      // Claim the backend's next unclaimed preferred position.
      std::uint64_t position;
      do {
        position = (perm.offset + perm.next * perm.skip) % table_size_;
        ++perm.next;
      } while (table_[position] >= 0);
      table_[position] = healthy[i];
      ++filled;
    }
  }
}

int Maglev::Lookup(const FiveTuple& flow) const {
  if (backends_.empty()) {
    return -1;
  }
  std::uint64_t hash = Fnv1a(&flow, sizeof(flow));
  int backend = table_[hash % table_size_];
  return backend;
}

int Maglev::ForwardPacket(std::uint8_t* frame, std::size_t len) {
  std::optional<ParsedFrame> parsed = ParseUdpFrame(frame, len);
  if (!parsed.has_value()) {
    return -1;
  }
  int index = Lookup(parsed->flow);
  if (index < 0) {
    return -1;
  }
  const MaglevBackend& backend = backends_[static_cast<std::size_t>(index)];
  RewriteDestination(frame, len, backend.mac, backend.ip);
  return index;
}

std::vector<std::uint32_t> Maglev::Shares() const {
  std::vector<std::uint32_t> shares(backends_.size(), 0);
  for (int entry : table_) {
    if (entry >= 0) {
      ++shares[static_cast<std::size_t>(entry)];
    }
  }
  return shares;
}

}  // namespace atmo
