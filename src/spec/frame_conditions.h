// Frame-condition helpers for syscall specifications.
//
// The paper's specs (Listing 1) spend most of their lines stating what does
// NOT change ("the state of each thread is unchanged", "virtual addresses
// outside of va_range are not changed", ...). These helpers express those
// quantified frame conditions once, against the abstract state.

#ifndef ATMO_SRC_SPEC_FRAME_CONDITIONS_H_
#define ATMO_SRC_SPEC_FRAME_CONDITIONS_H_

#include "src/spec/abstract_state.h"

namespace atmo {

// dom(post.m) == dom(pre.m) ∪ added \ removed, and values agree outside
// `touched` (touched keys may change or appear/disappear).
template <typename K, typename V>
bool MapUnchangedExcept(const SpecMap<K, V>& pre, const SpecMap<K, V>& post,
                        const SpecSet<K>& touched) {
  if (pre.SharesRepWith(post)) {
    return true;  // COW witness: identical maps are trivially frame-respecting
  }
  bool pre_ok = pre.ForAll([&](const K& k, const V& v) {
    if (touched.contains(k)) {
      return true;
    }
    return post.contains(k) && post.at(k) == v;
  });
  if (!pre_ok) {
    return false;
  }
  return post.ForAll([&](const K& k, const V&) {
    return touched.contains(k) || pre.contains(k);
  });
}

inline bool ThreadsUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                   const SpecSet<ThrdPtr>& touched) {
  return MapUnchangedExcept(pre.threads, post.threads, touched);
}

inline bool ContainersUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                      const SpecSet<CtnrPtr>& touched) {
  return MapUnchangedExcept(pre.containers, post.containers, touched);
}

inline bool ProcsUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                 const SpecSet<ProcPtr>& touched) {
  return MapUnchangedExcept(pre.procs, post.procs, touched);
}

inline bool EndpointsUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                     const SpecSet<EdptPtr>& touched) {
  return MapUnchangedExcept(pre.endpoints, post.endpoints, touched);
}

inline bool AddressSpacesUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                         const SpecSet<ProcPtr>& touched) {
  return MapUnchangedExcept(pre.address_spaces, post.address_spaces, touched);
}

inline bool PagesUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                 const SpecSet<PagePtr>& touched) {
  return MapUnchangedExcept(pre.pages, post.pages, touched);
}

inline bool IommuUnchanged(const AbstractKernel& pre, const AbstractKernel& post) {
  return pre.iommu_domains == post.iommu_domains;
}

inline bool RingsUnchangedExcept(const AbstractKernel& pre, const AbstractKernel& post,
                                 const SpecSet<std::uint64_t>& touched) {
  return MapUnchangedExcept(pre.rings, post.rings, touched);
}

inline bool SchedulerUnchanged(const AbstractKernel& pre, const AbstractKernel& post) {
  return pre.run_queue == post.run_queue && pre.current == post.current;
}

// Free sets shrink by exactly `taken` (which must have been free) and grow
// by exactly `given`, per size class.
inline bool FreeSetsDelta(const AbstractKernel& pre, const AbstractKernel& post,
                          const SpecSet<PagePtr>& taken_4k, const SpecSet<PagePtr>& given_4k) {
  if (!taken_4k.IsSubsetOf(pre.free_pages_4k)) {
    return false;
  }
  return post.free_pages_4k == pre.free_pages_4k.Difference(taken_4k).Union(given_4k);
}

// Threads outside `touched` unchanged; threads inside changed at most in
// their scheduler state field.
inline bool ThreadsTouchedOnlyInState(const AbstractKernel& pre, const AbstractKernel& post,
                                      const SpecSet<ThrdPtr>& touched) {
  if (!ThreadsUnchangedExcept(pre, post, touched)) {
    return false;
  }
  return touched.ForAll([&](ThrdPtr t) {
    if (!pre.threads.contains(t) || !post.threads.contains(t)) {
      return false;
    }
    AbsThread a = pre.threads.at(t);
    AbsThread b = post.threads.at(t);
    a.state = b.state;  // state may differ; everything else must match
    return a == b;
  });
}

// Everything except the scheduler is identical (used by dispatch/yield).
inline bool OnlySchedulerChanged(const AbstractKernel& pre, const AbstractKernel& post,
                                 const SpecSet<ThrdPtr>& state_touched) {
  return ContainersUnchangedExcept(pre, post, {}) && ProcsUnchangedExcept(pre, post, {}) &&
         EndpointsUnchangedExcept(pre, post, {}) &&
         AddressSpacesUnchangedExcept(pre, post, {}) && PagesUnchangedExcept(pre, post, {}) &&
         IommuUnchanged(pre, post) && RingsUnchangedExcept(pre, post, {}) &&
         pre.free_pages_4k == post.free_pages_4k &&
         pre.free_pages_2m == post.free_pages_2m && pre.free_pages_1g == post.free_pages_1g &&
         ThreadsTouchedOnlyInState(pre, post, state_touched);
}

}  // namespace atmo

#endif  // ATMO_SRC_SPEC_FRAME_CONDITIONS_H_
