// Frame-condition table: which components of Ψ each syscall may touch.
//
// The per-syscall specifications (syscall_specs.cc) state exact frame
// conditions, but they are spread across ~1200 lines of predicate code — a
// reviewer (or a static checker) cannot see at a glance what kMmap is
// allowed to modify. This table is the coarse, declarative summary: one
// FrameProfile per SysOp naming the abstract-state components the op may
// change on ANY outcome (success, blocked, or failure). It is enforced two
// ways:
//
//   * at runtime — RefinementChecker::Step evaluates
//     FrameProfileViolation(Ψ, Ψ', profile) after every Exec and fails
//     verification if a component outside the profile changed. Unchanged
//     components share their COW rep in incremental mode, so the check is
//     O(1) per untouched component;
//   * statically — tools/averif_lint's spec-coverage rule requires every
//     SysOp enumerator to appear in the FrameProfileFor switch below (along
//     with the spec dispatcher, the kernel dispatch and SysOpName), so a
//     new syscall cannot ship without declaring its frame.
//
// Keep profiles tight: a component is listed only if some reachable path of
// the op mutates it. Widening a profile to silence a runtime violation
// must be justified against the concrete kernel path that touches the
// component (see DESIGN.md §11).

#ifndef ATMO_SRC_SPEC_FRAME_PROFILE_H_
#define ATMO_SRC_SPEC_FRAME_PROFILE_H_

#include <string>

#include "src/core/syscall.h"
#include "src/spec/abstract_state.h"

namespace atmo {

// One bit per component of AbstractKernel. `containers` covers
// root_container as well; `free_sets` covers the three per-size-class free
// sets; `scheduler` covers run_queue and current.
struct FrameProfile {
  bool threads = false;
  bool containers = false;
  bool procs = false;
  bool endpoints = false;
  bool address_spaces = false;
  bool pages = false;
  bool free_sets = false;
  bool iommu = false;
  bool rings = false;
  bool scheduler = false;
};

// The table. Derivation notes per op:
//   * object creation charges quota (containers) and allocates object/table
//     pages (pages + free_sets);
//   * rendezvous IPC can move threads between queues (threads, endpoints,
//     scheduler) and a delivered payload can map a granted page
//     (address_spaces, pages, free_sets, receiver quota) or delegate an
//     IOMMU domain (iommu, both containers' charge);
//   * kills harvest resources upward: everything the subtree owned can be
//     re-attributed or freed.
constexpr FrameProfile FrameProfileFor(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return {.threads = true, .scheduler = true};
    case SysOp::kMmap:
      return {.containers = true, .address_spaces = true, .pages = true, .free_sets = true};
    case SysOp::kMunmap:
      return {.containers = true, .address_spaces = true, .pages = true, .free_sets = true};
    case SysOp::kNewContainer:
      return {.containers = true, .pages = true, .free_sets = true};
    case SysOp::kNewProcess:
      return {.containers = true, .procs = true, .address_spaces = true, .pages = true,
              .free_sets = true};
    case SysOp::kNewThread:
      return {.threads = true, .containers = true, .procs = true, .pages = true,
              .free_sets = true, .scheduler = true};
    case SysOp::kNewEndpoint:
      return {.threads = true, .containers = true, .endpoints = true, .pages = true,
              .free_sets = true};
    case SysOp::kUnbindEndpoint:
      return {.threads = true, .containers = true, .endpoints = true, .pages = true,
              .free_sets = true};
    case SysOp::kSend:
    case SysOp::kRecv:
    case SysOp::kCall:
    case SysOp::kReply:
      // Everything a delivered payload can reach, except process structure.
      return {.threads = true, .containers = true, .endpoints = true,
              .address_spaces = true, .pages = true, .free_sets = true, .iommu = true,
              .scheduler = true};
    case SysOp::kExit:
      return {.threads = true, .containers = true, .procs = true, .endpoints = true,
              .pages = true, .free_sets = true, .scheduler = true};
    case SysOp::kKillProcess:
      return {.threads = true, .containers = true, .procs = true, .endpoints = true,
              .address_spaces = true, .pages = true, .free_sets = true, .scheduler = true};
    case SysOp::kKillContainer:
      return {.threads = true, .containers = true, .procs = true, .endpoints = true,
              .address_spaces = true, .pages = true, .free_sets = true, .iommu = true,
              .scheduler = true};
    case SysOp::kIommuCreateDomain:
      return {.containers = true, .pages = true, .free_sets = true, .iommu = true};
    case SysOp::kIommuAttachDevice:
      return {.iommu = true};
    case SysOp::kIommuDetachDevice:
      return {.iommu = true};
    case SysOp::kIommuMapDma:
      return {.containers = true, .pages = true, .free_sets = true, .iommu = true};
    case SysOp::kIommuUnmapDma:
      return {.containers = true, .pages = true, .free_sets = true, .iommu = true};
    case SysOp::kRingSetup:
      return {.rings = true};
    case SysOp::kRingSubmit:
      return {.rings = true};
    case SysOp::kRingEnter:
      // One checked transition covering a whole drained batch: the union of
      // every submittable op's profile (everything but the scheduler-only
      // bits kNewThread already brings in) plus the ring itself. This width
      // is the amortization tradeoff — per-entry tightness is recovered by
      // the differential oracle (tests/ring_batch_differential_test.cc).
      return {.threads = true, .containers = true, .procs = true, .endpoints = true,
              .address_spaces = true, .pages = true, .free_sets = true, .iommu = true,
              .rings = true, .scheduler = true};
    case SysOp::kGrantReturn:
      // Borrower unmap + lender rights restore: two address spaces and the
      // page's borrow relabeling. The lender still maps the frame, so the
      // return can never release it — no container charge or free-set edge.
      return {.address_spaces = true, .pages = true};
    case SysOp::kObsQuery:
      // The tightest profile in the table: the snapshot lands in page byte
      // contents, which Ψ does not model, so at abstract level the syscall
      // touches nothing at all. Any component drift is out-of-frame.
      return {};
  }
  // Unreachable for in-range enumerators; a hostile cast lands on the
  // widest profile so the runtime check never under-approximates.
  return {.threads = true, .containers = true, .procs = true, .endpoints = true,
          .address_spaces = true, .pages = true, .free_sets = true, .iommu = true,
          .rings = true, .scheduler = true};
}

// Checks that every component NOT in `profile` is identical between `pre`
// and `post`. Returns the empty string on success, else the name of the
// first out-of-frame component that changed. Component equality hits the
// COW SharesRepWith fast path whenever the abstraction left the rep alone,
// so a passing check on an untouched component is O(1).
inline std::string FrameProfileViolation(const AbstractKernel& pre, const AbstractKernel& post,
                                         const FrameProfile& profile) {
  if (!profile.threads && !(pre.threads == post.threads)) {
    return "threads";
  }
  if (!profile.containers &&
      (pre.root_container != post.root_container || !(pre.containers == post.containers))) {
    return "containers";
  }
  if (!profile.procs && !(pre.procs == post.procs)) {
    return "procs";
  }
  if (!profile.endpoints && !(pre.endpoints == post.endpoints)) {
    return "endpoints";
  }
  if (!profile.address_spaces && !(pre.address_spaces == post.address_spaces)) {
    return "address_spaces";
  }
  if (!profile.pages && !(pre.pages == post.pages)) {
    return "pages";
  }
  if (!profile.free_sets &&
      !(pre.free_pages_4k == post.free_pages_4k && pre.free_pages_2m == post.free_pages_2m &&
        pre.free_pages_1g == post.free_pages_1g)) {
    return "free_sets";
  }
  if (!profile.iommu && !(pre.iommu_domains == post.iommu_domains)) {
    return "iommu";
  }
  if (!profile.rings && !(pre.rings == post.rings)) {
    return "rings";
  }
  if (!profile.scheduler &&
      !(pre.run_queue == post.run_queue && pre.current == post.current)) {
    return "scheduler";
  }
  return std::string();
}

}  // namespace atmo

#endif  // ATMO_SRC_SPEC_FRAME_PROFILE_H_
