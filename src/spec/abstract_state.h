// Abstract kernel state Ψ (§2, §4).
//
// The microkernel is modelled as a state machine over this structure: plain
// functional maps and sets describing every kernel object, every address
// space, and the allocator's page attribution. Kernel::Abstract() is the
// abstraction function from the concrete, pointer-centric implementation to
// this state; the per-syscall specifications (src/spec/syscall_specs.h)
// relate Ψ before and Ψ' after each step.
//
// Everything here has value semantics and extensional equality, which is
// what lets the harness state the paper's strongest frame condition
// directly: `ret is an error ==> Ψ' == Ψ`.

#ifndef ATMO_SRC_SPEC_ABSTRACT_STATE_H_
#define ATMO_SRC_SPEC_ABSTRACT_STATE_H_

#include <array>
#include <cstdint>

#include "src/core/syscall_ring.h"
#include "src/ipc/message.h"
#include "src/pmem/page_allocator.h"
#include "src/proc/objects.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_seq.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

struct AbsContainer {
  CtnrPtr parent = kNullPtr;
  SpecSeq<CtnrPtr> children;  // ordered as the concrete list
  std::uint64_t depth = 0;
  SpecSeq<CtnrPtr> path;
  SpecSet<CtnrPtr> subtree;
  std::uint64_t mem_quota = 0;
  std::uint64_t mem_used = 0;
  std::uint64_t cpu_mask = 0;
  SpecSeq<ProcPtr> procs;
  SpecSet<ThrdPtr> threads;

  friend bool operator==(const AbsContainer&, const AbsContainer&) = default;
};

struct AbsProcess {
  CtnrPtr ctnr = kNullPtr;
  ProcPtr parent = kNullPtr;
  SpecSeq<ProcPtr> children;
  SpecSeq<ThrdPtr> threads;

  friend bool operator==(const AbsProcess&, const AbsProcess&) = default;
};

struct AbsThread {
  ProcPtr proc = kNullPtr;
  CtnrPtr ctnr = kNullPtr;
  ThreadState state = ThreadState::kRunnable;
  std::array<EdptPtr, kMaxEdptDescriptors> endpoints{};
  IpcPayload ipc_buf;
  bool has_inbound = false;
  EdptPtr waiting_on = kNullPtr;
  ThrdPtr reply_to = kNullPtr;

  friend bool operator==(const AbsThread&, const AbsThread&) = default;
};

struct AbsEndpoint {
  SpecSeq<ThrdPtr> queue;
  EdptQueueKind queue_kind = EdptQueueKind::kEmpty;
  std::uint64_t rf_count = 0;
  CtnrPtr owner = kNullPtr;

  friend bool operator==(const AbsEndpoint&, const AbsEndpoint&) = default;
};

// Abstract view of a live read-only borrow (an IPC kBorrow grant): page
// ownership is *relabeled* in Ψ — the lender keeps the frame but is marked
// downgraded, the borrower holds a read-only view — with no byte-level copy
// anywhere in the spec (DESIGN.md §15).
struct AbsPageBorrow {
  ProcPtr lender = kNullPtr;
  VAddr lender_va = 0;
  bool lender_writable = false;  // right restored when the borrow ends
  ProcPtr borrower = kNullPtr;
  VAddr borrower_va = 0;

  friend bool operator==(const AbsPageBorrow&, const AbsPageBorrow&) = default;
};

struct AbsPageInfo {
  PageState state = PageState::kFree;
  PageSize size = PageSize::k4K;
  CtnrPtr owner = kNullPtr;
  std::uint32_t map_count = 0;
  bool borrowed = false;  // exactly when `borrow` is meaningful
  AbsPageBorrow borrow;

  friend bool operator==(const AbsPageInfo&, const AbsPageInfo&) = default;
};

struct AbsIommuDomain {
  CtnrPtr owner = kNullPtr;
  SpecMap<VAddr, MapEntry> mappings;
  SpecSet<std::uint32_t> devices;

  friend bool operator==(const AbsIommuDomain&, const AbsIommuDomain&) = default;
};

// A syscall ring's abstract view: the SQ and CQ as plain sequences in FIFO
// order (oldest first) — the concrete head/tail indices and slot layout are
// implementation detail the abstraction erases.
struct AbsSyscallRing {
  ThrdPtr owner = kNullPtr;
  ProcPtr owner_proc = kNullPtr;
  CtnrPtr owner_ctnr = kNullPtr;
  std::uint32_t capacity = 0;
  std::uint32_t flags = 0;
  SpecSeq<RingSqEntry> sq;
  SpecSeq<RingCqEntry> cq;

  friend bool operator==(const AbsSyscallRing&, const AbsSyscallRing&) = default;
};

struct AbstractKernel {
  CtnrPtr root_container = kNullPtr;
  SpecMap<CtnrPtr, AbsContainer> containers;
  SpecMap<ProcPtr, AbsProcess> procs;
  SpecMap<ThrdPtr, AbsThread> threads;
  SpecMap<EdptPtr, AbsEndpoint> endpoints;
  // Per-process abstract address space (the union of the page-table ghost
  // maps, proven equal to the MMU's view by the refinement checkers).
  SpecMap<ProcPtr, SpecMap<VAddr, MapEntry>> address_spaces;
  // Allocator view: in-use unit pages (allocated + mapped) and the free
  // sets per size class.
  SpecMap<PagePtr, AbsPageInfo> pages;
  SpecSet<PagePtr> free_pages_4k;
  SpecSet<PagePtr> free_pages_2m;
  SpecSet<PagePtr> free_pages_1g;
  // IOMMU view.
  SpecMap<std::uint64_t, AbsIommuDomain> iommu_domains;
  // Syscall rings.
  SpecMap<std::uint64_t, AbsSyscallRing> rings;
  // Scheduler.
  SpecSeq<ThrdPtr> run_queue;
  ThrdPtr current = kNullPtr;

  friend bool operator==(const AbstractKernel&, const AbstractKernel&) = default;

  // --- Accessors mirroring the paper's notation ---
  SpecSet<ThrdPtr> thread_dom() const { return KeySet(threads); }
  SpecSet<ProcPtr> proc_dom() const { return KeySet(procs); }
  SpecSet<CtnrPtr> cntr_dom() const { return KeySet(containers); }
  SpecSet<EdptPtr> edpt_dom() const { return KeySet(endpoints); }

  const AbsThread& get_thread(ThrdPtr t) const { return threads.at(t); }
  const AbsProcess& get_proc(ProcPtr p) const { return procs.at(p); }
  const AbsContainer& get_cntr(CtnrPtr c) const { return containers.at(c); }
  const AbsEndpoint& get_endpoint(EdptPtr e) const { return endpoints.at(e); }
  const AbsSyscallRing& get_ring(std::uint64_t id) const { return rings.at(id); }
  const SpecMap<VAddr, MapEntry>& get_address_space(ProcPtr p) const {
    return address_spaces.at(p);
  }
  // A page is free when its own base is on a free list of any size class,
  // or when it lies inside a larger free unit (the allocator may service a
  // smaller request by splitting a free 2M/1G unit, so any frame covered by
  // one is as good as free).
  bool page_is_free(PagePtr p) const {
    return free_pages_4k.contains(p) || free_pages_2m.contains(p) ||
           free_pages_1g.contains(p) ||
           free_pages_2m.contains(p & ~(kPageSize2M - 1)) ||
           free_pages_1g.contains(p & ~(kPageSize1G - 1));
  }

 private:
  template <typename K, typename V>
  static SpecSet<K> KeySet(const SpecMap<K, V>& map) {
    SpecSet<K> out;
    for (const auto& [k, v] : map) {
      out.add(k);
    }
    return out;
  }
};

}  // namespace atmo

#endif  // ATMO_SRC_SPEC_ABSTRACT_STATE_H_
