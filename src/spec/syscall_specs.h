// Per-syscall specifications (Listing 1: syscall_mmap_spec and friends).
//
// Each predicate relates the abstract state before (Ψ) and after (Ψ') one
// kernel step, the invoking thread, the syscall arguments and the return
// value. The refinement harness (src/verif) evaluates the matching
// predicate after every Kernel::Exec and fails verification if it does not
// hold.
//
// Two cross-cutting obligations hold for every syscall:
//   * failure atomicity — `ret.error ∉ {kOk, kBlocked} ==> Ψ' == Ψ`;
//   * output determinism — the return value is a function of (Ψ, t, call),
//     which the noninterference harness checks separately by replaying.

#ifndef ATMO_SRC_SPEC_SYSCALL_SPECS_H_
#define ATMO_SRC_SPEC_SYSCALL_SPECS_H_

#include <string>

#include "src/core/syscall.h"
#include "src/spec/abstract_state.h"

namespace atmo {

struct SpecResult {
  bool ok = true;
  std::string detail;

  static SpecResult Fail(std::string d) { return SpecResult{false, std::move(d)}; }
};

// Scheduler dispatch: `t` is put on the CPU (Kernel::Dispatch).
SpecResult DispatchSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t);

// Dispatches on call.op. `pre` must be the abstract state immediately after
// Dispatch (t is current).
SpecResult SyscallSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                       const Syscall& call, const SyscallRet& ret);

// Individual specs (exposed for targeted tests and Fig 2 timing).
SpecResult YieldSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const SyscallRet& ret);
SpecResult MmapSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret);
SpecResult MunmapSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                      const Syscall& call, const SyscallRet& ret);
SpecResult NewContainerSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                            const Syscall& call, const SyscallRet& ret);
SpecResult NewProcessSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                          const SyscallRet& ret);
SpecResult NewThreadSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                         const Syscall& call, const SyscallRet& ret);
SpecResult NewEndpointSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                           const Syscall& call, const SyscallRet& ret);
SpecResult UnbindEndpointSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                              const Syscall& call, const SyscallRet& ret);
SpecResult SendSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret);
SpecResult RecvSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret);
SpecResult CallSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret);
SpecResult ReplySpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const Syscall& call, const SyscallRet& ret);
SpecResult ExitSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const SyscallRet& ret);
SpecResult KillProcessSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                           const Syscall& call, const SyscallRet& ret);
SpecResult KillContainerSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                             const Syscall& call, const SyscallRet& ret);
SpecResult IommuSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const Syscall& call, const SyscallRet& ret);
SpecResult RingSetupSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                         const Syscall& call, const SyscallRet& ret);
SpecResult RingSubmitSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                          const Syscall& call, const SyscallRet& ret);
// One kRingEnter is ONE checked transition covering the whole drained batch.
// The spec pins the ring's own evolution exactly (drain count, SQ tail
// retained, CQ append order) and leaves the drained entries' effects on the
// rest of Ψ to the frame profile, TotalWf, the audit and the differential
// oracle (tests/ring_batch_differential_test.cc) — that division of labor is
// the batch amortization (DESIGN.md §13).
SpecResult RingEnterSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                         const Syscall& call, const SyscallRet& ret);
// kGrantReturn: the inverse relabeling of a kBorrow page grant — the
// borrower's read-only view disappears, the lender's original rights are
// restored, and the page's borrow mark clears. A pure Ψ relabeling: no
// bytes move and nothing is released.
SpecResult GrantReturnSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                           const Syscall& call, const SyscallRet& ret);

// kObsQuery: counter snapshot into a caller-mapped page. Ψ does not model
// page byte contents, so success requires Ψ' == Ψ exactly, plus a
// writable/user mapping based at the destination VA in the pre state.
SpecResult ObsQuerySpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                        const Syscall& call, const SyscallRet& ret);

}  // namespace atmo

#endif  // ATMO_SRC_SPEC_SYSCALL_SPECS_H_
