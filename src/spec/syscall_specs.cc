#include "src/spec/syscall_specs.h"

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "src/core/syscall_ring.h"

#include "src/spec/frame_conditions.h"

namespace atmo {

namespace {

SpecResult Fail(const std::string& detail) { return SpecResult::Fail(detail); }

SpecSeq<ThrdPtr> RemoveFirst(const SpecSeq<ThrdPtr>& seq, ThrdPtr t) {
  SpecSeq<ThrdPtr> out;
  bool removed = false;
  for (ThrdPtr x : seq) {
    if (!removed && x == t) {
      removed = true;
      continue;
    }
    out = out.push(x);
  }
  return out;
}

// The `ret is a failure ==> Ψ' == Ψ` obligation shared by every syscall.
std::optional<SpecResult> CheckFailureAtomicity(const AbstractKernel& pre,
                                                const AbstractKernel& post,
                                                const SyscallRet& ret) {
  if (ret.error == SysError::kOk || ret.error == SysError::kBlocked) {
    return std::nullopt;
  }
  if (!(pre == post)) {
    return Fail("failed syscall changed the abstract state (atomicity violated)");
  }
  return SpecResult{};
}

// New pages this step introduced (dom(post.pages) \ dom(pre.pages)).
SpecSet<PagePtr> NewPages(const AbstractKernel& pre, const AbstractKernel& post) {
  SpecSet<PagePtr> out;
  for (const auto& [page, info] : post.pages) {
    if (!pre.pages.contains(page)) {
      out.add(page);
    }
  }
  return out;
}

// Mirror of Kernel::ResolveOutboundPayload over the abstract state.
std::optional<IpcPayload> ResolvePayloadSpec(const AbstractKernel& pre, ThrdPtr t,
                                             const IpcPayload& payload) {
  const AbsThread& thread = pre.get_thread(t);
  IpcPayload out = payload;

  if (payload.page.has_value()) {
    if (!pre.address_spaces.contains(thread.proc)) {
      return std::nullopt;
    }
    const SpecMap<VAddr, MapEntry>& space = pre.get_address_space(thread.proc);
    VAddr va = payload.page->page;
    if (!space.contains(va)) {
      return std::nullopt;
    }
    MapEntry entry = space.at(va);
    if (entry.size != payload.page->size) {
      return std::nullopt;
    }
    if ((payload.page->perm.writable && !entry.perm.writable) ||
        (!payload.page->perm.no_execute && entry.perm.no_execute)) {
      return std::nullopt;
    }
    // A borrowed page is never grantable, in any mode (exclusivity of the
    // loan); move/borrow additionally require the sender's mapping to be
    // the frame's only one, and a borrow is read-only by construction.
    if (pre.pages.contains(entry.addr) && pre.pages.at(entry.addr).borrowed) {
      return std::nullopt;
    }
    if (payload.page->mode != GrantMode::kShare) {
      if (!pre.pages.contains(entry.addr) || pre.pages.at(entry.addr).map_count != 1) {
        return std::nullopt;
      }
      if (payload.page->mode == GrantMode::kBorrow && payload.page->perm.writable) {
        return std::nullopt;
      }
    }
    out.page->src_va = va;
    out.page->page = entry.addr;
  }
  if (payload.endpoint.has_value()) {
    std::uint64_t src = payload.endpoint->endpoint;
    if (src >= kMaxEdptDescriptors || thread.endpoints[src] == kNullPtr) {
      return std::nullopt;
    }
    out.endpoint->endpoint = thread.endpoints[src];
  }
  if (payload.iommu.has_value()) {
    std::uint64_t domain = payload.iommu->domain_id;
    if (!pre.iommu_domains.contains(domain) ||
        pre.iommu_domains.at(domain).owner != thread.ctnr) {
      return std::nullopt;
    }
  }
  return out;
}

// Checks the effects of delivering `resolved` from sender `s` to receiver
// `r`. A page grant is a pure ownership relabeling of Ψ — no byte-level copy
// appears here in any mode: kShare adds a mapping, kMove replaces the
// sender's with the receiver's in the same transition, kBorrow adds a
// read-only view while downgrading the lender and marking the page borrowed.
SpecResult CheckDeliveryEffects(const AbstractKernel& pre, const AbstractKernel& post,
                                ThrdPtr s, ThrdPtr r, const IpcPayload& resolved) {
  const AbsThread& post_r = post.get_thread(r);
  if (!post_r.has_inbound || !(post_r.ipc_buf == resolved)) {
    return Fail("receiver inbound buffer does not carry the resolved payload");
  }
  if (resolved.page.has_value()) {
    const PageGrant& grant = *resolved.page;
    ProcPtr rproc = post_r.proc;
    const SpecMap<VAddr, MapEntry>& space = post.get_address_space(rproc);
    if (!space.contains(grant.dest_va)) {
      return Fail("granted page not mapped at the destination address");
    }
    MapEntry entry = space.at(grant.dest_va);
    if (entry.addr != grant.page || entry.size != grant.size || !(entry.perm == grant.perm)) {
      return Fail("granted mapping differs from the grant");
    }
    if (!post.pages.contains(grant.page)) {
      return Fail("granted page missing from the abstract page map");
    }
    const AbsPageInfo& post_info = post.pages.at(grant.page);
    std::uint32_t pre_count = pre.pages.at(grant.page).map_count;
    const SpecMap<VAddr, MapEntry>& pre_space = pre.get_address_space(rproc);

    if (grant.mode == GrantMode::kShare) {
      // Shared page pinned once more; the receiver's space changed only at
      // dest_va.
      if (post_info.map_count != pre_count + 1) {
        return Fail("granted page map count did not increment");
      }
      if (post_info.borrowed) {
        return Fail("share grant left a borrow relabeling");
      }
      if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_space, space, grant.dest_va)) {
        return Fail("page grant changed other receiver mappings");
      }
    } else {
      ProcPtr sproc = pre.get_thread(s).proc;
      const SpecMap<VAddr, MapEntry>& pre_sspace = pre.get_address_space(sproc);
      const SpecMap<VAddr, MapEntry>& post_sspace = post.get_address_space(sproc);
      if (grant.mode == GrantMode::kMove) {
        // Relabeling: the sender's mapping became the receiver's, net map
        // count unchanged, no borrow.
        if (post_info.map_count != pre_count) {
          return Fail("moved page map count changed");
        }
        if (post_info.borrowed) {
          return Fail("move grant left a borrow relabeling");
        }
        if (post_sspace.contains(grant.src_va)) {
          return Fail("moved mapping survived at the sender");
        }
      } else {  // GrantMode::kBorrow
        if (post_info.map_count != pre_count + 1) {
          return Fail("borrowed page map count did not increment");
        }
        MapEntry pre_src = pre_sspace.at(grant.src_va);
        AbsPageBorrow expect{sproc, grant.src_va, pre_src.perm.writable, rproc,
                             grant.dest_va};
        if (!post_info.borrowed || !(post_info.borrow == expect)) {
          return Fail("borrow relabeling differs from the specification");
        }
        if (!post_sspace.contains(grant.src_va)) {
          return Fail("lender mapping vanished under a borrow");
        }
        MapEntry post_src = post_sspace.at(grant.src_va);
        MapEntryPerm ro = pre_src.perm;
        ro.writable = false;
        if (post_src.addr != pre_src.addr || post_src.size != pre_src.size ||
            !(post_src.perm == ro)) {
          return Fail("lender downgrade differs from the specification");
        }
      }
      // Space framing: exactly the source and destination slots changed.
      if (sproc == rproc) {
        if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt2(pre_space, space, grant.src_va,
                                                      grant.dest_va)) {
          return Fail("self-directed grant changed other mappings");
        }
      } else {
        if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_space, space, grant.dest_va)) {
          return Fail("page grant changed other receiver mappings");
        }
        if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_sspace, post_sspace,
                                                     grant.src_va)) {
          return Fail("page grant changed other sender mappings");
        }
      }
    }
  }
  if (resolved.endpoint.has_value()) {
    const EndpointGrant& grant = *resolved.endpoint;
    if (post_r.endpoints[grant.dest_index] != grant.endpoint) {
      return Fail("granted endpoint not installed in the destination slot");
    }
    if (post.get_endpoint(grant.endpoint).rf_count !=
        pre.get_endpoint(grant.endpoint).rf_count + 1) {
      return Fail("granted endpoint reference count did not increment");
    }
  }
  if (resolved.iommu.has_value()) {
    std::uint64_t domain = resolved.iommu->domain_id;
    if (!post.iommu_domains.contains(domain) ||
        post.iommu_domains.at(domain).owner != post_r.ctnr) {
      return Fail("delegated IOMMU domain not owned by the receiver's container");
    }
  }
  return SpecResult{};
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch / yield
// ---------------------------------------------------------------------------

SpecResult DispatchSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t) {
  if (pre.current == t) {
    if (!(pre == post)) {
      return Fail("dispatch of the current thread changed the state");
    }
    return SpecResult{};
  }
  if (!pre.threads.contains(t) || pre.get_thread(t).state != ThreadState::kRunnable) {
    return Fail("dispatched thread was not runnable");
  }
  if (post.current != t || post.get_thread(t).state != ThreadState::kRunning) {
    return Fail("dispatched thread is not running/current");
  }
  SpecSeq<ThrdPtr> expected = RemoveFirst(pre.run_queue, t);
  SpecSet<ThrdPtr> touched{t};
  if (pre.current != kNullPtr) {
    expected = expected.push(pre.current);
    touched.add(pre.current);
    if (post.get_thread(pre.current).state != ThreadState::kRunnable) {
      return Fail("preempted thread is not runnable");
    }
  }
  if (!(post.run_queue == expected)) {
    return Fail("run queue after dispatch differs from the specification");
  }
  if (!OnlySchedulerChanged(pre, post, touched)) {
    return Fail("dispatch changed non-scheduler state");
  }
  return SpecResult{};
}

// averif-lint: allow(error-path) — the first clause rejects ANY non-kOk
// return outright (yield is total), which is strictly stronger than failure
// atomicity; the dispatcher establishes the atomicity obligation anyway.
SpecResult YieldSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const SyscallRet& ret) {
  if (ret.error != SysError::kOk) {
    return Fail("yield cannot fail");
  }
  if (pre.run_queue.empty()) {
    if (!(pre == post)) {
      return Fail("yield with an empty run queue must be a no-op");
    }
    return SpecResult{};
  }
  ThrdPtr next = pre.run_queue[0];
  if (post.current != next || post.get_thread(next).state != ThreadState::kRunning) {
    return Fail("yield did not run the head of the queue");
  }
  if (post.get_thread(t).state != ThreadState::kRunnable) {
    return Fail("yielding thread is not runnable");
  }
  SpecSeq<ThrdPtr> expected = pre.run_queue.subrange(1, pre.run_queue.len()).push(t);
  if (!(post.run_queue == expected)) {
    return Fail("run queue after yield differs from the specification");
  }
  if (!OnlySchedulerChanged(pre, post, SpecSet<ThrdPtr>{t, next})) {
    return Fail("yield changed non-scheduler state");
  }
  return SpecResult{};
}

// ---------------------------------------------------------------------------
// Memory
// ---------------------------------------------------------------------------

SpecResult MmapSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("mmap never blocks");
  }
  const VaRange& range = call.va_range;
  if (ret.value != range.count) {
    return Fail("mmap return value is not the mapped count");
  }
  const AbsThread& thread = pre.get_thread(t);

  // The state of each thread is unchanged (Listing 1, lines 7-11); same for
  // processes, endpoints, IOMMU and the scheduler.
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ProcsUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post) ||
      !SchedulerUnchanged(pre, post)) {
    return Fail("mmap changed unrelated kernel objects");
  }

  // Newly allocated pages were free (lines 19-22) and are now owned by the
  // caller's container.
  SpecSet<PagePtr> fresh = NewPages(pre, post);
  if (!PagesUnchangedExcept(pre, post, fresh)) {
    return Fail("mmap changed pre-existing pages");
  }
  std::uint64_t fresh_frames = 0;
  SpecSet<PagePtr> fresh_mapped;
  for (PagePtr page : fresh) {
    if (!pre.page_is_free(page)) {
      return Fail("mmap used a page that was not free");
    }
    const AbsPageInfo& info = post.pages.at(page);
    if (info.owner != thread.ctnr) {
      return Fail("mmapped page not attributed to the caller's container");
    }
    if (info.state == PageState::kMapped) {
      if (info.map_count != 1 || info.size != range.size) {
        return Fail("mmapped data page has wrong count/size");
      }
      fresh_mapped.add(page);
    } else if (info.state != PageState::kAllocated || info.size != PageSize::k4K) {
      return Fail("fresh non-data page is not a 4K table node");
    }
    fresh_frames += PageFrames4K(info.size);
  }
  if (fresh_mapped.size() != range.count) {
    return Fail("number of fresh mapped pages differs from the request");
  }

  // Quota: only the caller's container changed, by exactly the fresh frames.
  if (!ContainersUnchangedExcept(pre, post, SpecSet<CtnrPtr>{thread.ctnr})) {
    return Fail("mmap touched other containers");
  }
  AbsContainer pre_c = pre.get_cntr(thread.ctnr);
  const AbsContainer& post_c = post.get_cntr(thread.ctnr);
  if (post_c.mem_used != pre_c.mem_used + fresh_frames) {
    return Fail("container charge differs from the fresh frame count");
  }
  pre_c.mem_used = post_c.mem_used;
  if (!(pre_c == post_c)) {
    return Fail("mmap changed container fields other than mem_used");
  }

  // Address space: each va in the range maps a unique fresh page with the
  // requested rights (lines 23-26); addresses outside the range are
  // unchanged (lines 13-18); other address spaces unchanged.
  if (!AddressSpacesUnchangedExcept(pre, post, SpecSet<ProcPtr>{thread.proc})) {
    return Fail("mmap changed other address spaces");
  }
  const SpecMap<VAddr, MapEntry>& pre_space = pre.get_address_space(thread.proc);
  const SpecMap<VAddr, MapEntry>& post_space = post.get_address_space(thread.proc);
  SpecSet<VAddr> range_vas;
  SpecSet<PagePtr> used;
  for (std::uint64_t i = 0; i < range.count; ++i) {
    VAddr va = range.At(i);
    range_vas.add(va);
    if (pre_space.contains(va)) {
      return Fail("mmap target address was already mapped");
    }
    if (!post_space.contains(va)) {
      return Fail("mmap target address is not mapped afterwards");
    }
    MapEntry entry = post_space.at(va);
    if (entry.size != range.size || !(entry.perm == call.map_perm)) {
      return Fail("mmapped entry has wrong size/rights");
    }
    if (!fresh_mapped.contains(entry.addr)) {
      return Fail("mmapped entry does not reference a fresh page");
    }
    if (used.contains(entry.addr)) {
      return Fail("two virtual addresses received the same page");
    }
    used.add(entry.addr);
  }
  if (!MapUnchangedExcept(pre_space, post_space, range_vas)) {
    return Fail("virtual addresses outside va_range changed");
  }
  return SpecResult{};
}

SpecResult MunmapSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                      const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("munmap never blocks");
  }
  const VaRange& range = call.va_range;
  const AbsThread& thread = pre.get_thread(t);

  if (!ThreadsUnchangedExcept(pre, post, {}) || !ProcsUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post) ||
      !SchedulerUnchanged(pre, post)) {
    return Fail("munmap changed unrelated kernel objects");
  }
  if (!AddressSpacesUnchangedExcept(pre, post, SpecSet<ProcPtr>{thread.proc})) {
    return Fail("munmap changed other address spaces");
  }

  const SpecMap<VAddr, MapEntry>& pre_space = pre.get_address_space(thread.proc);
  const SpecMap<VAddr, MapEntry>& post_space = post.get_address_space(thread.proc);
  SpecSet<VAddr> range_vas;
  SpecSet<PagePtr> touched_pages;
  std::map<PagePtr, std::uint32_t> unmap_counts;
  for (std::uint64_t i = 0; i < range.count; ++i) {
    VAddr va = range.At(i);
    range_vas.add(va);
    if (!pre_space.contains(va) || pre_space.at(va).size != range.size) {
      return Fail("munmap of an address that was not mapped at this size");
    }
    if (post_space.contains(va)) {
      return Fail("munmapped address still mapped");
    }
    touched_pages.add(pre_space.at(va).addr);
    ++unmap_counts[pre_space.at(va).addr];
  }
  if (!MapUnchangedExcept(pre_space, post_space, range_vas)) {
    return Fail("virtual addresses outside va_range changed");
  }
  if (!PagesUnchangedExcept(pre, post, touched_pages)) {
    return Fail("munmap changed unrelated pages");
  }

  // Per-page release accounting and container refunds.
  std::map<CtnrPtr, std::uint64_t> refunds;
  for (PagePtr page : touched_pages) {
    const AbsPageInfo& before = pre.pages.at(page);
    std::uint32_t removed = unmap_counts[page];
    if (before.map_count > removed) {
      if (!post.pages.contains(page) ||
          post.pages.at(page).map_count != before.map_count - removed) {
        return Fail("shared page count did not decrement correctly");
      }
    } else if (before.map_count == removed) {
      if (post.pages.contains(page)) {
        return Fail("fully unmapped page still in use");
      }
      if (!post.page_is_free(page)) {
        return Fail("fully unmapped page did not return to the free lists");
      }
      refunds[before.owner] += PageFrames4K(before.size);
    } else {
      return Fail("munmap removed more mappings than existed");
    }
  }
  SpecSet<CtnrPtr> touched_ctnrs;
  for (const auto& [owner, frames] : refunds) {
    touched_ctnrs.add(owner);
    AbsContainer pre_c = pre.get_cntr(owner);
    const AbsContainer& post_c = post.get_cntr(owner);
    if (post_c.mem_used + frames != pre_c.mem_used) {
      return Fail("container refund differs from released frames");
    }
    pre_c.mem_used = post_c.mem_used;
    if (!(pre_c == post_c)) {
      return Fail("munmap changed container fields other than mem_used");
    }
  }
  if (!ContainersUnchangedExcept(pre, post, touched_ctnrs)) {
    return Fail("munmap touched unrelated containers");
  }
  return SpecResult{};
}

// ---------------------------------------------------------------------------
// Object creation
// ---------------------------------------------------------------------------

SpecResult NewContainerSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                            const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  CtnrPtr child = ret.value;
  CtnrPtr parent = pre.get_thread(t).ctnr;
  if (pre.containers.contains(child)) {
    return Fail("new container pointer was already live");
  }
  if (!post.containers.contains(child)) {
    return Fail("new container missing from the post state");
  }
  const AbsContainer& c = post.get_cntr(child);
  const AbsContainer& pre_p = pre.get_cntr(parent);
  if (c.parent != parent || c.mem_quota != call.quota || c.mem_used != 1 ||
      c.cpu_mask != call.cpu_mask || c.depth != pre_p.depth + 1 ||
      !(c.path == pre_p.path.push(parent)) || !c.subtree.empty() || !c.children.empty() ||
      !c.procs.empty() || !c.threads.empty()) {
    return Fail("new container fields differ from the specification");
  }

  // Parent: quota carved, child linked, subtree extended.
  AbsContainer expect_p = pre_p;
  expect_p.mem_quota = pre_p.mem_quota - call.quota;
  expect_p.children = pre_p.children.push(child);
  expect_p.subtree = pre_p.subtree.insert(child);
  if (!(post.get_cntr(parent) == expect_p)) {
    return Fail("parent container update differs from the specification");
  }

  // new_container_ensures (Listing 3): each indirect parent's subtree is
  // extended by exactly the child; nothing else about it changes.
  SpecSet<CtnrPtr> touched{child, parent};
  for (CtnrPtr ancestor : pre_p.path) {
    touched.add(ancestor);
    AbsContainer expect_a = pre.get_cntr(ancestor);
    expect_a.subtree = expect_a.subtree.insert(child);
    if (!(post.get_cntr(ancestor) == expect_a)) {
      return Fail("ancestor subtree update differs from the specification");
    }
  }
  if (!ContainersUnchangedExcept(pre, post, touched)) {
    return Fail("new_container changed unrelated containers");
  }

  // One fresh allocated page: the container object, charged to the child.
  SpecSet<PagePtr> fresh = NewPages(pre, post);
  if (!(fresh == SpecSet<PagePtr>{child}) || !pre.page_is_free(child) ||
      post.pages.at(child).state != PageState::kAllocated ||
      post.pages.at(child).owner != child) {
    return Fail("container object page not allocated correctly");
  }
  if (!PagesUnchangedExcept(pre, post, fresh)) {
    return Fail("new_container changed unrelated pages");
  }
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ProcsUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post) ||
      !SchedulerUnchanged(pre, post)) {
    return Fail("new_container changed unrelated kernel objects");
  }
  return SpecResult{};
}

SpecResult NewProcessSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                          const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  ProcPtr child = ret.value;
  const AbsThread& thread = pre.get_thread(t);
  if (pre.procs.contains(child) || !post.procs.contains(child)) {
    return Fail("new process identity wrong");
  }
  const AbsProcess& p = post.get_proc(child);
  if (p.ctnr != thread.ctnr || p.parent != thread.proc || !p.children.empty() ||
      !p.threads.empty()) {
    return Fail("new process fields differ from the specification");
  }
  // Parent process gains the child; container lists/charges update.
  AbsProcess expect_parent = pre.get_proc(thread.proc);
  expect_parent.children = expect_parent.children.push(child);
  if (!(post.get_proc(thread.proc) == expect_parent)) {
    return Fail("parent process update differs from the specification");
  }
  if (!ProcsUnchangedExcept(pre, post, SpecSet<ProcPtr>{child, thread.proc})) {
    return Fail("new_process changed unrelated processes");
  }
  AbsContainer expect_c = pre.get_cntr(thread.ctnr);
  expect_c.procs = expect_c.procs.push(child);
  expect_c.mem_used += 2;  // the process object + the page-table root
  if (!(post.get_cntr(thread.ctnr) == expect_c)) {
    return Fail("container update differs from the specification");
  }
  if (!ContainersUnchangedExcept(pre, post, SpecSet<CtnrPtr>{thread.ctnr})) {
    return Fail("new_process changed unrelated containers");
  }
  // A fresh empty address space.
  if (!post.address_spaces.contains(child) || !post.get_address_space(child).empty()) {
    return Fail("new process address space missing or non-empty");
  }
  if (!AddressSpacesUnchangedExcept(pre, post, SpecSet<ProcPtr>{child})) {
    return Fail("new_process changed other address spaces");
  }
  // Exactly two fresh pages (object + table root), both previously free.
  SpecSet<PagePtr> fresh = NewPages(pre, post);
  if (fresh.size() != 2 || !fresh.contains(child)) {
    return Fail("new_process page allocation differs from the specification");
  }
  for (PagePtr page : fresh) {
    if (!pre.page_is_free(page) || post.pages.at(page).state != PageState::kAllocated ||
        post.pages.at(page).owner != thread.ctnr) {
      return Fail("new_process page not a fresh allocation owned by the container");
    }
  }
  if (!PagesUnchangedExcept(pre, post, fresh) || !ThreadsUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post) ||
      !SchedulerUnchanged(pre, post)) {
    return Fail("new_process changed unrelated state");
  }
  return SpecResult{};
}

SpecResult NewThreadSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                         const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  ThrdPtr child = ret.value;
  const AbsThread& thread = pre.get_thread(t);
  ProcPtr target = call.target == kNullPtr ? thread.proc : call.target;
  if (pre.threads.contains(child) || !post.threads.contains(child)) {
    return Fail("new thread identity wrong");
  }
  const AbsThread& nt = post.get_thread(child);
  if (nt.proc != target || nt.ctnr != thread.ctnr || nt.state != ThreadState::kRunnable ||
      nt.has_inbound || nt.waiting_on != kNullPtr || nt.reply_to != kNullPtr) {
    return Fail("new thread fields differ from the specification");
  }
  if (!(post.run_queue == pre.run_queue.push(child)) || post.current != pre.current) {
    return Fail("new thread not appended to the run queue");
  }
  AbsProcess expect_p = pre.get_proc(target);
  expect_p.threads = expect_p.threads.push(child);
  if (!(post.get_proc(target) == expect_p) ||
      !ProcsUnchangedExcept(pre, post, SpecSet<ProcPtr>{target})) {
    return Fail("process update differs from the specification");
  }
  AbsContainer expect_c = pre.get_cntr(thread.ctnr);
  expect_c.threads = expect_c.threads.insert(child);
  expect_c.mem_used += 1;
  if (!(post.get_cntr(thread.ctnr) == expect_c) ||
      !ContainersUnchangedExcept(pre, post, SpecSet<CtnrPtr>{thread.ctnr})) {
    return Fail("container update differs from the specification");
  }
  SpecSet<PagePtr> fresh = NewPages(pre, post);
  if (!(fresh == SpecSet<PagePtr>{child}) || !pre.page_is_free(child)) {
    return Fail("thread object page not a fresh allocation");
  }
  if (!PagesUnchangedExcept(pre, post, fresh) ||
      !ThreadsUnchangedExcept(pre, post, SpecSet<ThrdPtr>{child}) ||
      !EndpointsUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post)) {
    return Fail("new_thread changed unrelated state");
  }
  return SpecResult{};
}

SpecResult NewEndpointSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                           const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  EdptPtr edpt = ret.value;
  const AbsThread& thread = pre.get_thread(t);
  if (pre.endpoints.contains(edpt) || !post.endpoints.contains(edpt)) {
    return Fail("new endpoint identity wrong");
  }
  const AbsEndpoint& e = post.get_endpoint(edpt);
  if (!e.queue.empty() || e.queue_kind != EdptQueueKind::kEmpty || e.rf_count != 1 ||
      e.owner != thread.ctnr) {
    return Fail("new endpoint fields differ from the specification");
  }
  AbsThread expect_t = thread;
  expect_t.endpoints[call.edpt_idx] = edpt;
  if (!(post.get_thread(t) == expect_t) ||
      !ThreadsUnchangedExcept(pre, post, SpecSet<ThrdPtr>{t})) {
    return Fail("descriptor installation differs from the specification");
  }
  AbsContainer expect_c = pre.get_cntr(thread.ctnr);
  expect_c.mem_used += 1;
  if (!(post.get_cntr(thread.ctnr) == expect_c) ||
      !ContainersUnchangedExcept(pre, post, SpecSet<CtnrPtr>{thread.ctnr})) {
    return Fail("container charge differs from the specification");
  }
  SpecSet<PagePtr> fresh = NewPages(pre, post);
  if (!(fresh == SpecSet<PagePtr>{edpt}) || !pre.page_is_free(edpt)) {
    return Fail("endpoint object page not a fresh allocation");
  }
  if (!PagesUnchangedExcept(pre, post, fresh) ||
      !EndpointsUnchangedExcept(pre, post, SpecSet<EdptPtr>{edpt}) ||
      !ProcsUnchangedExcept(pre, post, {}) || !AddressSpacesUnchangedExcept(pre, post, {}) ||
      !IommuUnchanged(pre, post) || !SchedulerUnchanged(pre, post)) {
    return Fail("new_endpoint changed unrelated state");
  }
  return SpecResult{};
}

SpecResult UnbindEndpointSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                              const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("unbind_endpoint never blocks");
  }
  const AbsThread& thread = pre.get_thread(t);
  EdptPtr edpt = thread.endpoints[call.edpt_idx];
  if (edpt == kNullPtr) {
    return Fail("unbind succeeded on an empty slot");
  }
  // The caller's slot is cleared; nothing else about the thread changes.
  AbsThread expect_t = thread;
  expect_t.endpoints[call.edpt_idx] = kNullPtr;
  if (!(post.get_thread(t) == expect_t) ||
      !ThreadsUnchangedExcept(pre, post, SpecSet<ThrdPtr>{t})) {
    return Fail("descriptor clearing differs from the specification");
  }

  const AbsEndpoint& pre_e = pre.get_endpoint(edpt);
  if (pre_e.rf_count == 1) {
    // Last reference: the endpoint object is destroyed and its page freed,
    // refunding the owning container.
    if (post.endpoints.contains(edpt)) {
      return Fail("endpoint survived its last reference");
    }
    if (post.pages.contains(edpt) || !post.page_is_free(edpt)) {
      return Fail("endpoint page was not freed");
    }
    AbsContainer expect_c = pre.get_cntr(pre_e.owner);
    expect_c.mem_used -= 1;
    if (!(post.get_cntr(pre_e.owner) == expect_c) ||
        !ContainersUnchangedExcept(pre, post, SpecSet<CtnrPtr>{pre_e.owner})) {
      return Fail("endpoint-page refund differs from the specification");
    }
    if (!PagesUnchangedExcept(pre, post, SpecSet<PagePtr>{edpt}) ||
        !EndpointsUnchangedExcept(pre, post, SpecSet<EdptPtr>{edpt})) {
      return Fail("unbind (freeing) changed unrelated state");
    }
  } else {
    AbsEndpoint expect_e = pre_e;
    expect_e.rf_count -= 1;
    if (!(post.get_endpoint(edpt) == expect_e) ||
        !EndpointsUnchangedExcept(pre, post, SpecSet<EdptPtr>{edpt})) {
      return Fail("reference-count decrement differs from the specification");
    }
    if (!ContainersUnchangedExcept(pre, post, {}) || !PagesUnchangedExcept(pre, post, {})) {
      return Fail("unbind changed memory state without freeing");
    }
  }
  if (!ProcsUnchangedExcept(pre, post, {}) || !AddressSpacesUnchangedExcept(pre, post, {}) ||
      !IommuUnchanged(pre, post) || !SchedulerUnchanged(pre, post)) {
    return Fail("unbind changed unrelated kernel objects");
  }
  return SpecResult{};
}

// ---------------------------------------------------------------------------
// IPC
// ---------------------------------------------------------------------------

namespace {

// Shared shape of the "sender blocks on the endpoint queue" outcome.
SpecResult CheckBlockedOnEndpoint(const AbstractKernel& pre, const AbstractKernel& post,
                                  ThrdPtr t, EdptPtr edpt, ThreadState expect_state,
                                  const std::optional<IpcPayload>& staged) {
  const AbsThread& post_t = post.get_thread(t);
  if (post_t.state != expect_state || post_t.waiting_on != edpt) {
    return Fail("blocked thread state/endpoint differ from the specification");
  }
  if (staged.has_value() && !(post_t.ipc_buf == *staged)) {
    return Fail("staged payload differs from the resolved payload");
  }
  AbsEndpoint expect_e = pre.get_endpoint(edpt);
  expect_e.queue = expect_e.queue.push(t);
  expect_e.queue_kind = expect_state == ThreadState::kBlockedRecv ? EdptQueueKind::kReceivers
                                                                  : EdptQueueKind::kSenders;
  if (!(post.get_endpoint(edpt) == expect_e) ||
      !EndpointsUnchangedExcept(pre, post, SpecSet<EdptPtr>{edpt})) {
    return Fail("endpoint queue update differs from the specification");
  }
  if (post.current != kNullPtr || !(post.run_queue == pre.run_queue)) {
    return Fail("scheduler after blocking differs from the specification");
  }
  if (!ThreadsUnchangedExcept(pre, post, SpecSet<ThrdPtr>{t}) ||
      !ProcsUnchangedExcept(pre, post, {}) || !ContainersUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) || !PagesUnchangedExcept(pre, post, {}) ||
      !IommuUnchanged(pre, post)) {
    return Fail("blocking changed unrelated state");
  }
  return SpecResult{};
}

}  // namespace

SpecResult SendSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  const AbsThread& thread = pre.get_thread(t);
  EdptPtr edpt = thread.endpoints[call.edpt_idx];
  std::optional<IpcPayload> resolved = ResolvePayloadSpec(pre, t, call.payload);
  if (!resolved.has_value()) {
    return Fail("send succeeded with an unresolvable payload");
  }

  if (ret.error == SysError::kBlocked) {
    return CheckBlockedOnEndpoint(pre, post, t, edpt, ThreadState::kBlockedSend, resolved);
  }

  // Delivered directly to the head receiver.
  const AbsEndpoint& pre_e = pre.get_endpoint(edpt);
  if (pre_e.queue_kind != EdptQueueKind::kReceivers) {
    return Fail("send returned kOk without a waiting receiver");
  }
  ThrdPtr receiver = pre_e.queue[0];
  const AbsThread& post_r = post.get_thread(receiver);
  if (post_r.state != ThreadState::kRunnable) {
    return Fail("receiver was not woken");
  }
  if (!(post.run_queue == pre.run_queue.push(receiver)) || post.current != t) {
    return Fail("scheduler after delivery differs from the specification");
  }
  AbsEndpoint expect_e = pre_e;
  expect_e.queue = expect_e.queue.subrange(1, expect_e.queue.len());
  expect_e.queue_kind =
      expect_e.queue.empty() ? EdptQueueKind::kEmpty : EdptQueueKind::kReceivers;
  if (resolved->endpoint.has_value() && resolved->endpoint->endpoint == edpt) {
    expect_e.rf_count += 1;  // granting the very endpoint we sent through
  }
  if (!(post.get_endpoint(edpt) == expect_e)) {
    return Fail("endpoint after delivery differs from the specification");
  }
  return CheckDeliveryEffects(pre, post, t, receiver, *resolved);
}

SpecResult RecvSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  const AbsThread& thread = pre.get_thread(t);
  EdptPtr edpt = thread.endpoints[call.edpt_idx];

  if (ret.error == SysError::kBlocked) {
    return CheckBlockedOnEndpoint(pre, post, t, edpt, ThreadState::kBlockedRecv,
                                  std::nullopt);
  }

  const AbsEndpoint& pre_e = pre.get_endpoint(edpt);
  if (pre_e.queue_kind != EdptQueueKind::kSenders) {
    return Fail("recv returned kOk without a waiting sender");
  }
  ThrdPtr sender = pre_e.queue[0];
  const AbsThread& pre_s = pre.get_thread(sender);
  IpcPayload staged = pre_s.ipc_buf;

  if (pre_s.state == ThreadState::kBlockedSend) {
    if (post.get_thread(sender).state != ThreadState::kRunnable ||
        !(post.run_queue == pre.run_queue.push(sender))) {
      return Fail("plain sender was not woken");
    }
  } else {
    // call(): the sender stays parked awaiting the reply; we owe it one.
    if (post.get_thread(sender).state != ThreadState::kBlockedCall ||
        post.get_thread(sender).waiting_on != kNullPtr ||
        post.get_thread(t).reply_to != sender ||
        !(post.run_queue == pre.run_queue)) {
      return Fail("caller rendezvous state differs from the specification");
    }
  }
  return CheckDeliveryEffects(pre, post, sender, t, staged);
}

SpecResult CallSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error != SysError::kBlocked) {
    return Fail("call always blocks awaiting the reply");
  }
  const AbsThread& thread = pre.get_thread(t);
  EdptPtr edpt = thread.endpoints[call.edpt_idx];
  std::optional<IpcPayload> resolved = ResolvePayloadSpec(pre, t, call.payload);
  if (!resolved.has_value()) {
    return Fail("call succeeded with an unresolvable payload");
  }

  const AbsEndpoint& pre_e = pre.get_endpoint(edpt);
  if (pre_e.queue_kind != EdptQueueKind::kReceivers) {
    // No receiver: queued like a sender, but in the calling state.
    return CheckBlockedOnEndpoint(pre, post, t, edpt, ThreadState::kBlockedCall, resolved);
  }

  ThrdPtr receiver = pre_e.queue[0];
  const AbsThread& post_t = post.get_thread(t);
  if (post_t.state != ThreadState::kBlockedCall || post_t.waiting_on != kNullPtr) {
    return Fail("caller is not parked awaiting the reply");
  }
  if (post.get_thread(receiver).state != ThreadState::kRunnable ||
      post.get_thread(receiver).reply_to != t) {
    return Fail("receiver rendezvous state differs from the specification");
  }
  if (post.current != kNullPtr || !(post.run_queue == pre.run_queue.push(receiver))) {
    return Fail("scheduler after call differs from the specification");
  }
  return CheckDeliveryEffects(pre, post, t, receiver, *resolved);
}

SpecResult ReplySpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("reply never blocks");
  }
  ThrdPtr caller = pre.get_thread(t).reply_to;
  std::optional<IpcPayload> resolved = ResolvePayloadSpec(pre, t, call.payload);
  if (!resolved.has_value()) {
    return Fail("reply succeeded with an unresolvable payload");
  }
  if (post.get_thread(t).reply_to != kNullPtr) {
    return Fail("reply obligation was not cleared");
  }
  if (post.get_thread(caller).state != ThreadState::kRunnable ||
      !(post.run_queue == pre.run_queue.push(caller)) || post.current != t) {
    return Fail("caller was not woken by the reply");
  }
  return CheckDeliveryEffects(pre, post, t, caller, *resolved);
}

// The inverse relabeling of a kBorrow delivery: the borrower's read-only
// view disappears, the lender's original rights come back, the page's
// borrow mark clears and its pin count drops by one. The lender still maps
// the frame, so nothing is ever released — no container, free-set,
// endpoint, IOMMU or scheduler component may change.
SpecResult GrantReturnSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                           const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("grant return never blocks");
  }
  ProcPtr proc = pre.get_thread(t).proc;
  VAddr va = call.va_range.base;
  const SpecMap<VAddr, MapEntry>& pre_bspace = pre.get_address_space(proc);
  if (!pre_bspace.contains(va)) {
    return Fail("grant return succeeded without a mapping at the returned address");
  }
  PagePtr page = pre_bspace.at(va).addr;
  const AbsPageInfo& pre_info = pre.pages.at(page);
  if (!pre_info.borrowed || pre_info.borrow.borrower != proc ||
      pre_info.borrow.borrower_va != va) {
    return Fail("grant return succeeded on a page the caller did not borrow");
  }
  const AbsPageBorrow& rec = pre_info.borrow;

  // Borrower side: the view is gone.
  const SpecMap<VAddr, MapEntry>& post_bspace = post.get_address_space(proc);
  if (post_bspace.contains(va)) {
    return Fail("returned view survived in the borrower's space");
  }
  // Lender side: original rights restored in place.
  const SpecMap<VAddr, MapEntry>& pre_lspace = pre.get_address_space(rec.lender);
  const SpecMap<VAddr, MapEntry>& post_lspace = post.get_address_space(rec.lender);
  if (!post_lspace.contains(rec.lender_va)) {
    return Fail("lender mapping vanished at grant return");
  }
  MapEntry pre_l = pre_lspace.at(rec.lender_va);
  MapEntry post_l = post_lspace.at(rec.lender_va);
  MapEntryPerm restored = pre_l.perm;
  restored.writable = rec.lender_writable;
  if (post_l.addr != page || post_l.size != pre_l.size || !(post_l.perm == restored)) {
    return Fail("lender rights were not restored at grant return");
  }
  // Page relabeling: unpinned once, borrow mark cleared, all else equal.
  AbsPageInfo expect_info = pre_info;
  expect_info.map_count = pre_info.map_count - 1;
  expect_info.borrowed = false;
  expect_info.borrow = AbsPageBorrow{};
  if (!post.pages.contains(page) || !(post.pages.at(page) == expect_info)) {
    return Fail("page relabeling at grant return differs from the specification");
  }
  // Framing: the two touched slots, the two spaces, the one page — and
  // nothing else anywhere in Ψ.
  if (rec.lender == proc) {
    if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt2(pre_bspace, post_bspace, va,
                                                  rec.lender_va)) {
      return Fail("grant return changed other mappings");
    }
  } else {
    if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_bspace, post_bspace, va) ||
        !SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_lspace, post_lspace, rec.lender_va)) {
      return Fail("grant return changed other mappings");
    }
  }
  if (!AddressSpacesUnchangedExcept(pre, post, SpecSet<ProcPtr>{proc, rec.lender}) ||
      !PagesUnchangedExcept(pre, post, SpecSet<PagePtr>{page})) {
    return Fail("grant return changed unrelated memory state");
  }
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ProcsUnchangedExcept(pre, post, {}) ||
      !ContainersUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post) ||
      !RingsUnchangedExcept(pre, post, {}) || !SchedulerUnchanged(pre, post)) {
    return Fail("grant return changed unrelated kernel objects");
  }
  if (!(pre.free_pages_4k == post.free_pages_4k) ||
      !(pre.free_pages_2m == post.free_pages_2m) ||
      !(pre.free_pages_1g == post.free_pages_1g)) {
    return Fail("grant return changed the free sets");
  }
  return SpecResult{};
}

// The introspection syscall (DESIGN.md §17): the kernel writes a counter
// snapshot into a page the caller already maps writable. Ψ carries no page
// byte contents, so "Ψ' == Ψ modulo the written page" collapses to exact
// equality of every abstract component — the strongest frame any syscall
// carries. Success additionally requires the evidence the kernel claims to
// have checked: a writable, user-accessible mapping based at the
// destination VA in the *pre* state.
SpecResult ObsQuerySpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                        const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("obs query never blocks");
  }
  ProcPtr proc = pre.get_thread(t).proc;
  VAddr va = call.va_range.base;
  const SpecMap<VAddr, MapEntry>& space = pre.get_address_space(proc);
  if (!space.contains(va)) {
    return Fail("obs query succeeded without a mapping based at the destination");
  }
  const MapEntry& dest = space.at(va);
  if (!dest.perm.writable || !dest.perm.user) {
    return Fail("obs query succeeded through a non-writable or kernel-only mapping");
  }
  if (ret.value != sizeof(ObsQueryRecord)) {
    return Fail("obs query did not report the snapshot record size");
  }
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ProcsUnchangedExcept(pre, post, {}) ||
      !ContainersUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) ||
      !PagesUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post) ||
      !RingsUnchangedExcept(pre, post, {}) || !SchedulerUnchanged(pre, post)) {
    return Fail("obs query changed abstract kernel state");
  }
  if (!(pre.free_pages_4k == post.free_pages_4k) ||
      !(pre.free_pages_2m == post.free_pages_2m) ||
      !(pre.free_pages_1g == post.free_pages_1g)) {
    return Fail("obs query changed the free sets");
  }
  return SpecResult{};
}

// ---------------------------------------------------------------------------
// Exit / kill (property-style: exact removal sets + survivor framing)
// ---------------------------------------------------------------------------

// averif-lint: allow(error-path) — the first clause rejects ANY non-kOk
// return outright (exit is total), which is strictly stronger than failure
// atomicity; the dispatcher establishes the atomicity obligation anyway.
SpecResult ExitSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const SyscallRet& ret) {
  if (ret.error != SysError::kOk) {
    return Fail("exit cannot fail");
  }
  if (post.threads.contains(t)) {
    return Fail("exited thread still live");
  }
  if (post.current != kNullPtr) {
    return Fail("CPU not idle after exit");
  }
  // The thread's object page was freed.
  if (post.pages.contains(t) || !post.page_is_free(t)) {
    return Fail("exited thread's page was not freed");
  }
  // Threads referencing t via reply_to were cleared; no other thread field
  // changes besides that.
  bool others_ok = pre.threads.ForAll([&](ThrdPtr x, const AbsThread& before) {
    if (x == t) {
      return true;
    }
    if (!post.threads.contains(x)) {
      return false;
    }
    AbsThread expect = before;
    if (expect.reply_to == t) {
      expect.reply_to = kNullPtr;
    }
    return post.get_thread(x) == expect;
  });
  if (!others_ok) {
    return Fail("exit changed surviving threads beyond reply_to clearing");
  }
  // Endpoints: only reference counts drop (and endpoints t solely
  // referenced disappear).
  bool endpoints_ok = pre.endpoints.ForAll([&](EdptPtr e, const AbsEndpoint& before) {
    std::uint64_t t_refs = 0;
    for (EdptPtr d : pre.get_thread(t).endpoints) {
      if (d == e) {
        ++t_refs;
      }
    }
    if (t_refs == 0) {
      // May still lose t from its wait queue.
      if (!post.endpoints.contains(e)) {
        return false;
      }
      AbsEndpoint expect = before;
      expect.queue = RemoveFirst(before.queue, t);
      expect.queue_kind =
          expect.queue.empty() ? EdptQueueKind::kEmpty : before.queue_kind;
      return post.get_endpoint(e) == expect;
    }
    if (before.rf_count == t_refs) {
      return !post.endpoints.contains(e);  // freed with the last references
    }
    if (!post.endpoints.contains(e)) {
      return false;
    }
    AbsEndpoint expect = before;
    expect.rf_count = before.rf_count - t_refs;
    expect.queue = RemoveFirst(before.queue, t);
    expect.queue_kind = expect.queue.empty() ? EdptQueueKind::kEmpty : before.queue_kind;
    return post.get_endpoint(e) == expect;
  });
  if (!endpoints_ok) {
    return Fail("exit changed endpoints beyond reference release");
  }
  if (!AddressSpacesUnchangedExcept(pre, post, {}) || !IommuUnchanged(pre, post)) {
    return Fail("exit changed address spaces or IOMMU state");
  }
  return SpecResult{};
}

// Tearing down the processes in `doomed` revokes every loan a doomed
// borrower holds: the surviving lender's original rights come back in
// place at the recorded VA (the borrow-aware unmap, DESIGN.md §15).
// Surviving address spaces must be untouched except for exactly those
// restorations.
SpecResult CheckSurvivorSpacesAfterTeardown(const AbstractKernel& pre,
                                            const AbstractKernel& post,
                                            const SpecSet<ProcPtr>& doomed) {
  // lender -> VAs whose rights a dying borrower restores.
  SpecMap<ProcPtr, SpecSet<VAddr>> restored;
  bool restore_ok = true;
  pre.pages.ForAll([&](PagePtr, const AbsPageInfo& info) {
    if (!info.borrowed || !doomed.contains(info.borrow.borrower) ||
        doomed.contains(info.borrow.lender)) {
      return true;
    }
    const AbsPageBorrow& b = info.borrow;
    SpecSet<VAddr> vas =
        restored.contains(b.lender) ? restored.at(b.lender) : SpecSet<VAddr>{};
    restored.set(b.lender, vas.insert(b.lender_va));
    if (!post.address_spaces.contains(b.lender) ||
        !post.get_address_space(b.lender).contains(b.lender_va)) {
      restore_ok = false;
      return true;
    }
    MapEntry expect = pre.get_address_space(b.lender).at(b.lender_va);
    expect.perm.writable = b.lender_writable;
    if (!(post.get_address_space(b.lender).at(b.lender_va) == expect)) {
      restore_ok = false;
    }
    return true;
  });
  if (!restore_ok) {
    return Fail("teardown revocation did not restore the lender's rights");
  }
  bool no_new = post.address_spaces.ForAll(
      [&](ProcPtr p, const SpecMap<VAddr, MapEntry>&) { return pre.address_spaces.contains(p); });
  if (!no_new) {
    return Fail("teardown created an address space");
  }
  bool framed = pre.address_spaces.ForAll(
      [&](ProcPtr p, const SpecMap<VAddr, MapEntry>& space_pre) {
        if (doomed.contains(p)) {
          return true;
        }
        if (!post.address_spaces.contains(p)) {
          return false;
        }
        const SpecMap<VAddr, MapEntry>& space_post = post.get_address_space(p);
        if (!restored.contains(p)) {
          return space_pre == space_post;
        }
        const SpecSet<VAddr>& vas = restored.at(p);
        bool fwd = space_pre.ForAll([&](VAddr va, const MapEntry& entry) {
          return vas.contains(va) ||
                 (space_post.contains(va) && space_post.at(va) == entry);
        });
        return fwd && space_post.ForAll([&](VAddr va, const MapEntry&) {
          return vas.contains(va) || space_pre.contains(va);
        });
      });
  if (!framed) {
    return Fail("teardown changed surviving address spaces beyond revocation");
  }
  return SpecResult{};
}

SpecResult KillProcessSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                           const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  ProcPtr target = call.target;
  // Doomed set: target's process subtree in pre.
  SpecSet<ProcPtr> doomed;
  std::vector<ProcPtr> stack{target};
  while (!stack.empty()) {
    ProcPtr cur = stack.back();
    stack.pop_back();
    doomed.add(cur);
    for (ProcPtr child : pre.get_proc(cur).children) {
      stack.push_back(child);
    }
  }
  // Exact process removal.
  bool procs_ok = pre.procs.ForAll([&](ProcPtr p, const AbsProcess&) {
    return post.procs.contains(p) != doomed.contains(p);
  });
  if (!procs_ok || post.procs.size() + doomed.size() != pre.procs.size()) {
    return Fail("killed process set differs from the target subtree");
  }
  // Exact thread removal: every thread of a doomed process is gone.
  bool threads_ok = pre.threads.ForAll([&](ThrdPtr x, const AbsThread& before) {
    return post.threads.contains(x) != doomed.contains(before.proc);
  });
  if (!threads_ok) {
    return Fail("killed thread set differs from the doomed processes' threads");
  }
  // Address spaces of doomed processes are gone; others unchanged except
  // for loan revocations restoring a surviving lender's rights.
  if (SpecResult spaces = CheckSurvivorSpacesAfterTeardown(pre, post, doomed); !spaces.ok) {
    return spaces;
  }
  bool spaces_gone = doomed.ForAll([&](ProcPtr p) { return !post.address_spaces.contains(p); });
  if (!spaces_gone) {
    return Fail("doomed address spaces survived");
  }
  // No new pages; the killer's container survives; t survives.
  if (!NewPages(pre, post).empty()) {
    return Fail("kill_process allocated pages");
  }
  if (!post.threads.contains(t) || post.current != t) {
    return Fail("killer thread state wrong after kill_process");
  }
  return SpecResult{};
}

SpecResult KillContainerSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                             const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  CtnrPtr target = call.target;
  SpecSet<CtnrPtr> doomed = pre.get_cntr(target).subtree.insert(target);

  // Exact container removal.
  bool cntrs_ok = pre.containers.ForAll([&](CtnrPtr c, const AbsContainer&) {
    return post.containers.contains(c) != doomed.contains(c);
  });
  if (!cntrs_ok || post.containers.size() + doomed.size() != pre.containers.size()) {
    return Fail("killed container set differs from the target subtree");
  }
  // All processes/threads owned by doomed containers are gone; others live.
  bool procs_ok = pre.procs.ForAll([&](ProcPtr p, const AbsProcess& before) {
    return post.procs.contains(p) != doomed.contains(before.ctnr);
  });
  bool threads_ok = pre.threads.ForAll([&](ThrdPtr x, const AbsThread& before) {
    return post.threads.contains(x) != doomed.contains(before.ctnr);
  });
  if (!procs_ok || !threads_ok) {
    return Fail("doomed processes/threads survived (or survivors died)");
  }
  // Surviving address spaces are untouched except for loan revocations
  // (a doomed borrower's teardown restores a surviving lender's rights).
  SpecSet<ProcPtr> doomed_procs;
  pre.procs.ForAll([&](ProcPtr p, const AbsProcess& before) {
    if (doomed.contains(before.ctnr)) {
      doomed_procs.add(p);
    }
    return true;
  });
  if (SpecResult spaces = CheckSurvivorSpacesAfterTeardown(pre, post, doomed_procs);
      !spaces.ok) {
    return spaces;
  }
  // No endpoint, page or IOMMU domain remains attributed to a doomed
  // container (resources were harvested to the parent chain).
  bool edpt_ok = post.endpoints.ForAll(
      [&](EdptPtr, const AbsEndpoint& e) { return !doomed.contains(e.owner); });
  bool pages_ok = post.pages.ForAll(
      [&](PagePtr, const AbsPageInfo& info) { return !doomed.contains(info.owner); });
  bool iommu_ok = post.iommu_domains.ForAll(
      [&](std::uint64_t, const AbsIommuDomain& d) { return !doomed.contains(d.owner); });
  if (!edpt_ok || !pages_ok || !iommu_ok) {
    return Fail("resources still attributed to a dead container");
  }
  // Ancestors of the target lost exactly the doomed set from their subtree.
  for (CtnrPtr ancestor : pre.get_cntr(target).path) {
    if (!post.containers.contains(ancestor)) {
      return Fail("ancestor of the killed container disappeared");
    }
    if (!(post.get_cntr(ancestor).subtree == pre.get_cntr(ancestor).subtree.Difference(doomed))) {
      return Fail("ancestor subtree after kill differs from the specification");
    }
  }
  // The parent regained the target's reservation (plus anything its own
  // dying children returned transitively through the chain).
  CtnrPtr parent = pre.get_cntr(target).parent;
  if (post.get_cntr(parent).mem_quota < pre.get_cntr(parent).mem_quota) {
    return Fail("parent lost quota in the harvest");
  }
  if (!NewPages(pre, post).empty()) {
    return Fail("kill_container allocated pages");
  }
  if (!post.threads.contains(t) || post.current != t) {
    return Fail("killer thread state wrong after kill_container");
  }
  return SpecResult{};
}

// ---------------------------------------------------------------------------
// IOMMU
// ---------------------------------------------------------------------------

SpecResult IommuSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("IOMMU operations never block");
  }
  const AbsThread& thread = pre.get_thread(t);

  // Common framing: threads/procs/endpoints/scheduler untouched.
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ProcsUnchangedExcept(pre, post, {}) ||
      !EndpointsUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) || !SchedulerUnchanged(pre, post)) {
    return Fail("IOMMU op changed unrelated kernel objects");
  }

  switch (call.op) {
    case SysOp::kIommuCreateDomain: {
      std::uint64_t domain = ret.value;
      if (pre.iommu_domains.contains(domain) || !post.iommu_domains.contains(domain)) {
        return Fail("new IOMMU domain identity wrong");
      }
      const AbsIommuDomain& d = post.iommu_domains.at(domain);
      if (d.owner != thread.ctnr || !d.mappings.empty() || !d.devices.empty()) {
        return Fail("new IOMMU domain fields differ from the specification");
      }
      if (!MapUnchangedExcept(pre.iommu_domains, post.iommu_domains,
                              SpecSet<std::uint64_t>{domain})) {
        return Fail("create_domain changed other domains");
      }
      SpecSet<PagePtr> fresh = NewPages(pre, post);
      if (fresh.size() != 1) {
        return Fail("create_domain allocation differs from one root node");
      }
      return SpecResult{};
    }
    case SysOp::kIommuAttachDevice:
    case SysOp::kIommuDetachDevice: {
      if (!PagesUnchangedExcept(pre, post, {}) ||
          !ContainersUnchangedExcept(pre, post, {})) {
        return Fail("device attach/detach changed memory state");
      }
      // Exactly one domain's device set changed by the one device.
      std::uint64_t domain = call.op == SysOp::kIommuAttachDevice
                                 ? call.iommu_domain
                                 : [&] {
                                     // detach: find the device's pre domain
                                     for (const auto& [id, d] : pre.iommu_domains) {
                                       if (d.devices.contains(call.device)) {
                                         return id;
                                       }
                                     }
                                     return std::uint64_t{0};
                                   }();
      AbsIommuDomain expect = pre.iommu_domains.at(domain);
      if (call.op == SysOp::kIommuAttachDevice) {
        expect.devices = expect.devices.insert(call.device);
      } else {
        expect.devices = expect.devices.remove(call.device);
      }
      if (!(post.iommu_domains.at(domain) == expect) ||
          !MapUnchangedExcept(pre.iommu_domains, post.iommu_domains,
                              SpecSet<std::uint64_t>{domain})) {
        return Fail("device attachment update differs from the specification");
      }
      return SpecResult{};
    }
    case SysOp::kIommuMapDma: {
      std::uint64_t domain = call.iommu_domain;
      const AbsIommuDomain& pre_d = pre.iommu_domains.at(domain);
      const AbsIommuDomain& post_d = post.iommu_domains.at(domain);
      if (!post_d.mappings.contains(call.iova)) {
        return Fail("DMA window missing after map_dma");
      }
      if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_d.mappings, post_d.mappings,
                                                   call.iova)) {
        return Fail("map_dma changed other DMA windows");
      }
      // Pin: the target page's count incremented.
      PagePtr page = post_d.mappings.at(call.iova).addr;
      if (post.pages.at(page).map_count != pre.pages.at(page).map_count + 1) {
        return Fail("DMA-mapped page was not pinned");
      }
      return SpecResult{};
    }
    case SysOp::kIommuUnmapDma: {
      std::uint64_t domain = call.iommu_domain;
      const AbsIommuDomain& pre_d = pre.iommu_domains.at(domain);
      const AbsIommuDomain& post_d = post.iommu_domains.at(domain);
      if (post_d.mappings.contains(call.iova) || !pre_d.mappings.contains(call.iova)) {
        return Fail("DMA window still present after unmap_dma");
      }
      if (!SpecMap<VAddr, MapEntry>::AgreeExceptAt(pre_d.mappings, post_d.mappings,
                                                   call.iova)) {
        return Fail("unmap_dma changed other DMA windows");
      }
      PagePtr page = pre_d.mappings.at(call.iova).addr;
      if (post.pages.contains(page)) {
        if (post.pages.at(page).map_count != pre.pages.at(page).map_count - 1) {
          return Fail("DMA-unmapped page was not unpinned");
        }
      } else if (!post.page_is_free(page)) {
        return Fail("fully released page did not return to the free lists");
      }
      return SpecResult{};
    }
    case SysOp::kYield:
    case SysOp::kMmap:
    case SysOp::kMunmap:
    case SysOp::kNewContainer:
    case SysOp::kNewProcess:
    case SysOp::kNewThread:
    case SysOp::kNewEndpoint:
    case SysOp::kUnbindEndpoint:
    case SysOp::kSend:
    case SysOp::kRecv:
    case SysOp::kCall:
    case SysOp::kReply:
    case SysOp::kExit:
    case SysOp::kKillProcess:
    case SysOp::kKillContainer:
    case SysOp::kRingSetup:
    case SysOp::kRingSubmit:
    case SysOp::kRingEnter:
    case SysOp::kGrantReturn:
    case SysOp::kObsQuery:
      return Fail("not an IOMMU operation");
  }
  return Fail("not an IOMMU operation");
}

// ---------------------------------------------------------------------------
// Syscall rings (DESIGN.md §13)
// ---------------------------------------------------------------------------

SpecResult RingSetupSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                         const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("ring_setup never blocks");
  }
  std::uint64_t id = ret.value;
  if (pre.rings.contains(id) || !post.rings.contains(id)) {
    return Fail("new ring identity wrong");
  }
  if (!RingCapacityValid(call.ring_entries)) {
    return Fail("ring created with an invalid capacity");
  }
  const AbsThread& thread = pre.get_thread(t);
  const AbsSyscallRing& r = post.get_ring(id);
  if (r.owner != t || r.owner_proc != thread.proc || r.owner_ctnr != thread.ctnr ||
      r.capacity != call.ring_entries || r.flags != call.ring_flags || !r.sq.empty() ||
      !r.cq.empty()) {
    return Fail("new ring fields differ from the specification");
  }
  if (!RingsUnchangedExcept(pre, post, SpecSet<std::uint64_t>{id})) {
    return Fail("ring_setup changed other rings");
  }
  // Rings are bounded kernel bookkeeping, not page-backed objects: no
  // allocation, no quota charge, nothing else moves.
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ContainersUnchangedExcept(pre, post, {}) ||
      !ProcsUnchangedExcept(pre, post, {}) || !EndpointsUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) || !PagesUnchangedExcept(pre, post, {}) ||
      !(pre.free_pages_4k == post.free_pages_4k) ||
      !(pre.free_pages_2m == post.free_pages_2m) ||
      !(pre.free_pages_1g == post.free_pages_1g) || !IommuUnchanged(pre, post) ||
      !SchedulerUnchanged(pre, post)) {
    return Fail("ring_setup changed unrelated state");
  }
  return SpecResult{};
}

SpecResult RingSubmitSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                          const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("ring_submit never blocks");
  }
  if (!pre.rings.contains(call.ring_id) || !post.rings.contains(call.ring_id)) {
    return Fail("submit succeeded on an unknown ring");
  }
  const AbsSyscallRing& pre_r = pre.get_ring(call.ring_id);
  if (pre_r.owner != t) {
    return Fail("submit succeeded on a foreign ring");
  }
  if (!RingSubmittable(call.ring_op)) {
    return Fail("non-submittable op accepted onto a ring");
  }
  if (pre_r.sq.len() >= pre_r.capacity) {
    return Fail("submit succeeded on a full SQ");
  }
  // The stored entry is exactly RingInnerCall(call) — the kernel and this
  // spec share that rewrite, so what is executed at drain time cannot drift
  // from what was submitted.
  AbsSyscallRing expect = pre_r;
  expect.sq = pre_r.sq.push(RingSqEntry{RingInnerCall(call), call.ring_user_data});
  if (!(post.get_ring(call.ring_id) == expect) ||
      !RingsUnchangedExcept(pre, post, SpecSet<std::uint64_t>{call.ring_id})) {
    return Fail("SQ append differs from the specification");
  }
  if (ret.value != pre_r.sq.len() + 1) {
    return Fail("submit return is not the new SQ depth");
  }
  if (!ThreadsUnchangedExcept(pre, post, {}) || !ContainersUnchangedExcept(pre, post, {}) ||
      !ProcsUnchangedExcept(pre, post, {}) || !EndpointsUnchangedExcept(pre, post, {}) ||
      !AddressSpacesUnchangedExcept(pre, post, {}) || !PagesUnchangedExcept(pre, post, {}) ||
      !(pre.free_pages_4k == post.free_pages_4k) ||
      !(pre.free_pages_2m == post.free_pages_2m) ||
      !(pre.free_pages_1g == post.free_pages_1g) || !IommuUnchanged(pre, post) ||
      !SchedulerUnchanged(pre, post)) {
    return Fail("ring_submit changed unrelated state");
  }
  return SpecResult{};
}

SpecResult RingEnterSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                         const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;  // covers the kRingDrainAtomic rollback (kWouldFault)
  }
  if (ret.error == SysError::kBlocked) {
    return Fail("ring_enter never blocks");
  }
  if (!pre.rings.contains(call.ring_id) || !post.rings.contains(call.ring_id)) {
    return Fail("enter succeeded on an unknown ring");
  }
  const AbsSyscallRing& pre_r = pre.get_ring(call.ring_id);
  const AbsSyscallRing& post_r = post.get_ring(call.ring_id);
  if (pre_r.owner != t) {
    return Fail("enter succeeded on a foreign ring");
  }
  // Output determinism: the drain count is a function of (Ψ, call) — the SQ
  // depth clamped by the CQ's free space and the caller's budget. An
  // oversized batch is split, never rejected; an empty SQ drains zero.
  std::uint64_t n = pre_r.sq.len();
  n = std::min<std::uint64_t>(n, pre_r.capacity - pre_r.cq.len());
  if (call.ring_budget != 0) {
    n = std::min<std::uint64_t>(n, call.ring_budget);
  }
  if (ret.value != n) {
    return Fail("drain count differs from the specification");
  }
  if (!(post_r.sq == pre_r.sq.subrange(n, pre_r.sq.len()))) {
    return Fail("retained SQ tail differs from the specification");
  }
  if (post_r.cq.len() != pre_r.cq.len() + n) {
    return Fail("CQ growth differs from the drain count");
  }
  for (std::size_t i = 0; i < pre_r.cq.len(); ++i) {
    if (!(post_r.cq.at(i) == pre_r.cq.at(i))) {
      return Fail("enter rewrote already-queued completions");
    }
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    const RingCqEntry& cqe = post_r.cq.at(pre_r.cq.len() + i);
    if (cqe.user_data != pre_r.sq.at(i).user_data) {
      return Fail("completion order does not follow submission order");
    }
    if (cqe.ret.error == SysError::kBlocked) {
      return Fail("a drained entry completed as blocked");
    }
  }
  // The ring's identity fields never change across a drain.
  AbsSyscallRing pre_shell = pre_r;
  AbsSyscallRing post_shell = post_r;
  pre_shell.sq = SpecSeq<RingSqEntry>{};
  pre_shell.cq = SpecSeq<RingCqEntry>{};
  post_shell.sq = SpecSeq<RingSqEntry>{};
  post_shell.cq = SpecSeq<RingCqEntry>{};
  if (!(pre_shell == post_shell)) {
    return Fail("enter changed the ring's identity fields");
  }
  if (!RingsUnchangedExcept(pre, post, SpecSet<std::uint64_t>{call.ring_id})) {
    return Fail("enter changed other rings");
  }
  // The drained entries' effects on the rest of Ψ are deliberately NOT
  // restated here (see the header comment): the per-call path is the
  // differential oracle for them.
  return SpecResult{};
}

// ---------------------------------------------------------------------------
// Dispatcher
// ---------------------------------------------------------------------------

SpecResult SyscallSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                       const Syscall& call, const SyscallRet& ret) {
  // Failure atomicity holds globally — any hard error leaves Ψ unchanged,
  // whatever the op. The per-op specs restate the same guard so each stays
  // self-contained; establishing it here first means even ops whose specs
  // reject errors outright (yield, exit) carry the machine-checked
  // obligation.
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  switch (call.op) {
    case SysOp::kYield:
      return YieldSpec(pre, post, t, ret);
    case SysOp::kMmap:
      return MmapSpec(pre, post, t, call, ret);
    case SysOp::kMunmap:
      return MunmapSpec(pre, post, t, call, ret);
    case SysOp::kNewContainer:
      return NewContainerSpec(pre, post, t, call, ret);
    case SysOp::kNewProcess:
      return NewProcessSpec(pre, post, t, ret);
    case SysOp::kNewThread:
      return NewThreadSpec(pre, post, t, call, ret);
    case SysOp::kNewEndpoint:
      return NewEndpointSpec(pre, post, t, call, ret);
    case SysOp::kUnbindEndpoint:
      return UnbindEndpointSpec(pre, post, t, call, ret);
    case SysOp::kSend:
      return SendSpec(pre, post, t, call, ret);
    case SysOp::kRecv:
      return RecvSpec(pre, post, t, call, ret);
    case SysOp::kCall:
      return CallSpec(pre, post, t, call, ret);
    case SysOp::kReply:
      return ReplySpec(pre, post, t, call, ret);
    case SysOp::kExit:
      return ExitSpec(pre, post, t, ret);
    case SysOp::kKillProcess:
      return KillProcessSpec(pre, post, t, call, ret);
    case SysOp::kKillContainer:
      return KillContainerSpec(pre, post, t, call, ret);
    case SysOp::kIommuCreateDomain:
    case SysOp::kIommuAttachDevice:
    case SysOp::kIommuDetachDevice:
    case SysOp::kIommuMapDma:
    case SysOp::kIommuUnmapDma:
      return IommuSpec(pre, post, t, call, ret);
    case SysOp::kRingSetup:
      return RingSetupSpec(pre, post, t, call, ret);
    case SysOp::kRingSubmit:
      return RingSubmitSpec(pre, post, t, call, ret);
    case SysOp::kRingEnter:
      return RingEnterSpec(pre, post, t, call, ret);
    case SysOp::kGrantReturn:
      return GrantReturnSpec(pre, post, t, call, ret);
    case SysOp::kObsQuery:
      return ObsQuerySpec(pre, post, t, call, ret);
  }
  return Fail("unknown syscall");
}

}  // namespace atmo
