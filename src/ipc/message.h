// IPC message payloads (§3).
//
// A sender thread can pass scalar data, references to memory pages, IOMMU
// identifiers, and references to other endpoints. The payload is staged in
// the sending thread's IPC buffer (modelling the registers/UTCB of a real
// kernel) and copied into the receiver's buffer when the rendezvous
// completes.

#ifndef ATMO_SRC_IPC_MESSAGE_H_
#define ATMO_SRC_IPC_MESSAGE_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/vstd/types.h"

namespace atmo {

inline constexpr std::size_t kIpcScalarWords = 4;

// How a page grant transfers the mapping (linear-ownership discipline:
// a page moves or is borrowed, it is never duplicated without consent).
enum class GrantMode : std::uint8_t {
  kShare = 0,  // both sides keep a mapping; map count grows (classic grant)
  kMove,       // sender's mapping is unmapped in the same transition
  kBorrow,     // sender's mapping is downgraded to read-only; the receiver
               // gets a read-only view it must return (kGrantReturn) or
               // drop; revoked automatically when either side unmaps
};

// A page reference travelling in a message. The receiver gets the page
// mapped at `dest_va` in its address space with rights `perm` (capped by the
// sender's own rights on the page). kMove/kBorrow require the sender to hold
// the only mapping of the page (exclusive grant; double-grants are rejected).
struct PageGrant {
  PagePtr page = kNullPtr;
  PageSize size = PageSize::k4K;
  VAddr dest_va = 0;
  MapEntryPerm perm;
  GrantMode mode = GrantMode::kShare;
  // Sender virtual address of the granted page, recorded by payload
  // resolution (the `page` field is rewritten to the physical pointer).
  // Needed at Deliver time for the sender-side unmap (move) or permission
  // downgrade (borrow).
  VAddr src_va = 0;

  friend bool operator==(const PageGrant&, const PageGrant&) = default;
};

// An endpoint capability travelling in a message: installed into the
// receiver's descriptor table at `dest_index`.
struct EndpointGrant {
  EdptPtr endpoint = kNullPtr;
  EdptIdx dest_index = 0;

  friend bool operator==(const EndpointGrant&, const EndpointGrant&) = default;
};

// An IOMMU domain identifier travelling in a message (device delegation).
struct IommuGrant {
  std::uint64_t domain_id = 0;

  friend bool operator==(const IommuGrant&, const IommuGrant&) = default;
};

struct IpcPayload {
  std::array<std::uint64_t, kIpcScalarWords> scalars{};
  std::optional<PageGrant> page;
  std::optional<EndpointGrant> endpoint;
  std::optional<IommuGrant> iommu;
  // Causal trace id riding along with the message (0 = unsampled). Copied
  // verbatim into the receiver's buffer at Deliver, where the kernel stamps
  // the "stage.deliver" instant — this is how a sampled request's chain
  // crosses an IPC rendezvous into another process.
  std::uint64_t trace_id = 0;

  friend bool operator==(const IpcPayload&, const IpcPayload&) = default;
};

}  // namespace atmo

#endif  // ATMO_SRC_IPC_MESSAGE_H_
