#include "src/net/packet.h"

namespace atmo {

std::size_t BuildUdpFrame(std::uint8_t* buf, const MacAddr& src_mac, const MacAddr& dst_mac,
                          const FiveTuple& flow, const void* payload,
                          std::size_t payload_len) {
  if (payload_len > 0) {
    std::memcpy(buf + kHeadersLen, payload, payload_len);
  }
  return FinishUdpFrame(buf, src_mac, dst_mac, flow, payload_len);
}

std::size_t FinishUdpFrame(std::uint8_t* buf, const MacAddr& src_mac, const MacAddr& dst_mac,
                           const FiveTuple& flow, std::size_t payload_len) {
  std::size_t total = kHeadersLen + payload_len;
  if (total < kMinFrameLen) {
    total = kMinFrameLen;
  }

  // Ethernet.
  std::memcpy(buf, dst_mac.data(), 6);
  std::memcpy(buf + 6, src_mac.data(), 6);
  PutU16(buf + 12, 0x0800);  // IPv4

  // IPv4.
  std::uint8_t* ip = buf + kEthHeaderLen;
  std::uint16_t ip_len = static_cast<std::uint16_t>(total - kEthHeaderLen);
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0;
  PutU16(ip + 2, ip_len);
  PutU16(ip + 4, 0);  // id
  PutU16(ip + 6, 0);  // flags/frag
  ip[8] = 64;         // TTL
  ip[9] = flow.proto;
  PutU16(ip + 10, 0);  // checksum placeholder
  PutU32(ip + 12, flow.src_ip);
  PutU32(ip + 16, flow.dst_ip);
  PutU16(ip + 10, InternetChecksum(ip, kIpv4HeaderLen));

  // UDP.
  std::uint8_t* udp = ip + kIpv4HeaderLen;
  PutU16(udp, flow.src_port);
  PutU16(udp + 2, flow.dst_port);
  PutU16(udp + 4, static_cast<std::uint16_t>(kUdpHeaderLen + payload_len));
  PutU16(udp + 6, 0);  // checksum optional for IPv4

  std::size_t written = kHeadersLen + payload_len;
  if (written < total) {
    std::memset(buf + written, 0, total - written);  // pad
  }
  return total;
}

std::optional<ParsedFrame> ParseUdpFrame(const std::uint8_t* buf, std::size_t len) {
  if (len < kHeadersLen) {
    return std::nullopt;
  }
  if (GetU16(buf + 12) != 0x0800) {
    return std::nullopt;  // not IPv4
  }
  const std::uint8_t* ip = buf + kEthHeaderLen;
  if ((ip[0] >> 4) != 4 || (ip[0] & 0x0f) != 5) {
    return std::nullopt;
  }
  if (InternetChecksum(ip, kIpv4HeaderLen) != 0) {
    return std::nullopt;  // corrupt header
  }
  std::uint16_t ip_len = GetU16(ip + 2);
  if (ip_len < kIpv4HeaderLen + kUdpHeaderLen ||
      kEthHeaderLen + ip_len > len) {
    return std::nullopt;
  }

  ParsedFrame out;
  std::memcpy(out.dst_mac.data(), buf, 6);
  std::memcpy(out.src_mac.data(), buf + 6, 6);
  out.flow.proto = ip[9];
  out.flow.src_ip = GetU32(ip + 12);
  out.flow.dst_ip = GetU32(ip + 16);
  if (out.flow.proto != 17) {
    return std::nullopt;
  }
  const std::uint8_t* udp = ip + kIpv4HeaderLen;
  out.flow.src_port = GetU16(udp);
  out.flow.dst_port = GetU16(udp + 2);
  std::uint16_t udp_len = GetU16(udp + 4);
  if (udp_len < kUdpHeaderLen || kIpv4HeaderLen + udp_len > ip_len) {
    return std::nullopt;
  }
  out.payload = udp + kUdpHeaderLen;
  out.payload_len = udp_len - kUdpHeaderLen;
  return out;
}

void RewriteDestination(std::uint8_t* frame, std::size_t len, const MacAddr& new_dst_mac,
                        std::uint32_t new_dst_ip) {
  if (len < kHeadersLen) {
    return;
  }
  std::memcpy(frame, new_dst_mac.data(), 6);
  std::uint8_t* ip = frame + kEthHeaderLen;
  PutU32(ip + 16, new_dst_ip);
  PutU16(ip + 10, 0);
  PutU16(ip + 10, InternetChecksum(ip, kIpv4HeaderLen));
}

}  // namespace atmo
