// Raw Ethernet/IPv4/UDP frame construction and parsing.
//
// Shared by the simulated NIC (which generates and validates real frame
// bytes), the ixgbe driver, the baselines, and the packet applications
// (Maglev, kv-store, httpd). Frames are real bytes — every layer does the
// byte-level work a production data path does, which is what makes the
// throughput benchmarks meaningful.

#ifndef ATMO_SRC_NET_PACKET_H_
#define ATMO_SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>

namespace atmo {

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;
inline constexpr std::size_t kHeadersLen = kEthHeaderLen + kIpv4HeaderLen + kUdpHeaderLen;
inline constexpr std::size_t kMinFrameLen = 60;  // 64 minus FCS
inline constexpr std::size_t kMaxFrameLen = 1514;

using MacAddr = std::array<std::uint8_t, 6>;

struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 17;  // UDP

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

// FNV-1a — the hash function the paper's kv-store uses; also used for flow
// hashing in Maglev.
inline std::uint64_t Fnv1a(const void* data, std::size_t len,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

inline void PutU16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void PutU32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] << 8 | p[1]);
}
inline std::uint32_t GetU32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) << 24 | static_cast<std::uint32_t>(p[1]) << 16 |
         static_cast<std::uint32_t>(p[2]) << 8 | static_cast<std::uint32_t>(p[3]);
}

// RFC 1071 internet checksum over `len` bytes.
inline std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  while (len > 1) {
    sum += GetU16(data);
    data += 2;
    len -= 2;
  }
  if (len == 1) {
    sum += static_cast<std::uint32_t>(*data) << 8;
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum);
}

// Builds an Ethernet+IPv4+UDP frame carrying `payload`. Returns total frame
// length (padded to the 60-byte minimum). `buf` must hold kMaxFrameLen.
std::size_t BuildUdpFrame(std::uint8_t* buf, const MacAddr& src_mac, const MacAddr& dst_mac,
                          const FiveTuple& flow, const void* payload, std::size_t payload_len);

// Zero-copy variant: the payload is ALREADY in place at buf + kHeadersLen
// (written there directly by the application); this writes only the
// Ethernet/IPv4/UDP headers around it plus any minimum-length padding.
// Returns total frame length. BuildUdpFrame == memcpy payload + Finish.
std::size_t FinishUdpFrame(std::uint8_t* buf, const MacAddr& src_mac, const MacAddr& dst_mac,
                           const FiveTuple& flow, std::size_t payload_len);

struct ParsedFrame {
  FiveTuple flow;
  MacAddr src_mac{};
  MacAddr dst_mac{};
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
};

// Parses and validates an Ethernet+IPv4+UDP frame (checks ethertype,
// version, header length, IP checksum). nullopt = malformed / non-UDP.
std::optional<ParsedFrame> ParseUdpFrame(const std::uint8_t* buf, std::size_t len);

// Rewrites the destination MAC/IP in place and fixes the IP checksum
// (Maglev forwarding path).
void RewriteDestination(std::uint8_t* frame, std::size_t len, const MacAddr& new_dst_mac,
                        std::uint32_t new_dst_ip);

}  // namespace atmo

#endif  // ATMO_SRC_NET_PACKET_H_
