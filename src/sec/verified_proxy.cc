#include "src/sec/verified_proxy.h"

#include <vector>

#include "src/vstd/check.h"

namespace atmo {

VerifiedProxy::VerifiedProxy(Kernel* kernel, const AbvScenario& scenario)
    : kernel_(kernel),
      v_thread_(scenario.v_thread),
      a_(scenario.a),
      b_(scenario.b),
      v_proc_(scenario.v_proc) {}

SpecMap<VAddr, PageGrant>& VerifiedProxy::BookFor(CtnrPtr client) {
  ATMO_CHECK(client == a_ || client == b_, "VerifiedProxy: unknown client");
  return client == a_ ? from_a_ : from_b_;
}

bool VerifiedProxy::ServiceChannel(EdptIdx v_slot, CtnrPtr client) {
  const Thread& v = kernel_->pm().GetThread(v_thread_);
  EdptPtr edpt = v.endpoints[v_slot];
  if (edpt == kNullPtr) {
    return false;
  }
  if (kernel_->pm().GetEndpoint(edpt).queue_kind != EdptQueueKind::kSenders) {
    return false;  // nothing pending: the event loop stays non-blocking
  }

  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = v_slot;
  SyscallRet ret = kernel_->Step(v_thread_, recv);
  if (ret.error == SysError::kWouldFault) {
    // The head sender's transfer cannot be applied (e.g. it targets an
    // occupied V address). V's policy: reject it by... the sender stays
    // queued; nothing V can do without consuming it. Treat as idle.
    return false;
  }
  ATMO_CHECK(ret.error == SysError::kOk, "VerifiedProxy: recv on pending channel failed");
  std::optional<IpcPayload> msg = kernel_->TakeInbound(v_thread_);
  ATMO_CHECK(msg.has_value(), "VerifiedProxy: no inbound payload after recv");

  switch (msg->scalars[0]) {
    case kOpShare: {
      if (msg->page.has_value()) {
        // Record the shared page; the kernel mapped it at dest_va already.
        BookFor(client).set(msg->page->dest_va, *msg->page);
      }
      break;
    }
    case kOpRelease: {
      ReleaseClient(client);
      break;
    }
    case kOpEcho:
    default:
      break;
  }

  // If the client used call(), answer it. Replies carry scalars only — by
  // construction V never forwards a page or endpoint across clients.
  if (kernel_->pm().GetThread(v_thread_).reply_to != kNullPtr) {
    Syscall reply;
    reply.op = SysOp::kReply;
    reply.payload.scalars = {msg->scalars[0] + 1, 0, 0, 0};
    SyscallRet rret = kernel_->Step(v_thread_, reply);
    ATMO_CHECK(rret.error == SysError::kOk, "VerifiedProxy: reply failed");
  }
  return true;
}

int VerifiedProxy::PollOnce() {
  int handled = 0;
  if (ServiceChannel(AbvScenario::kVSlotA, a_)) {
    ++handled;
  }
  if (ServiceChannel(AbvScenario::kVSlotB, b_)) {
    ++handled;
  }
  return handled;
}

int VerifiedProxy::DrainAll() {
  int total = 0;
  while (int handled = PollOnce()) {
    total += handled;
  }
  return total;
}

void VerifiedProxy::ReleaseClient(CtnrPtr client) {
  SpecMap<VAddr, PageGrant>& book = BookFor(client);
  std::vector<VAddr> vas;
  for (const auto& [va, grant] : book) {
    vas.push_back(va);
  }
  for (VAddr va : vas) {
    Syscall unmap;
    unmap.op = SysOp::kMunmap;
    unmap.va_range = VaRange{va, 1, book.at(va).size};
    SyscallRet ret = kernel_->Step(v_thread_, unmap);
    ATMO_CHECK(ret.error == SysError::kOk, "VerifiedProxy: release unmap failed");
    book.erase(va);
  }
}

void VerifiedProxy::OnClientCrash(CtnrPtr client) { ReleaseClient(client); }

bool VerifiedProxy::SpecWf(std::string* detail) const {
  auto fail = [&](const char* msg) {
    if (detail != nullptr) {
      *detail = msg;
    }
    return false;
  };
  // 1. Pages from A and from B are disjoint.
  SpecSet<PagePtr> pages_a;
  for (const auto& [va, grant] : from_a_) {
    pages_a.add(grant.page);
  }
  for (const auto& [va, grant] : from_b_) {
    if (pages_a.contains(grant.page)) {
      return fail("a page is recorded as received from both clients");
    }
  }
  // 2. Every recorded page is mapped in V's address space at its VA.
  const SpecMap<VAddr, MapEntry> space = kernel_->vm().AddressSpaceOf(v_proc_);
  for (const auto* book : {&from_a_, &from_b_}) {
    bool ok = book->ForAll([&](VAddr va, const PageGrant& grant) {
      return space.contains(va) && space.at(va).addr == grant.page;
    });
    if (!ok) {
      return fail("a recorded page is not mapped in V's address space");
    }
  }
  return true;
}

}  // namespace atmo
