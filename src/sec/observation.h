// Domain observation function (§4.3, unwinding conditions).
//
// The observable state of a container subtree includes its memory quotas,
// address spaces, endpoints, and the state of its processes and threads.
// Two modelling choices, documented here because they define what "equal
// observations" means for the step-consistency (SC) check:
//
//  1. Physical page addresses are canonicalized (renamed to their order of
//     first appearance in the observation). A domain cannot read physical
//     addresses — it observes its virtual layout and the *sharing
//     structure* among its own pages. Canonicalization makes the
//     observation invariant under allocator placement, which a foreign
//     domain does influence (a recognized timing/placement channel the
//     paper also excludes from its formal statement).
//
//  2. Global run-queue ordering is excluded; each thread's own scheduler
//     state (running/runnable/blocked-on-which-of-my-endpoints) is
//     included. Cross-domain CPU multiplexing is a timing channel, outside
//     the state-based noninterference statement (paper §4.3 discussion).

#ifndef ATMO_SRC_SEC_OBSERVATION_H_
#define ATMO_SRC_SEC_OBSERVATION_H_

#include <cstdint>
#include <string>

#include "src/spec/abstract_state.h"

namespace atmo {

// A canonical, order-stable textual encoding of everything the domain can
// observe. Comparing DomainView equality == comparing observations.
struct DomainView {
  std::string encoding;

  friend bool operator==(const DomainView&, const DomainView&) = default;
};

DomainView ObserveDomain(const AbstractKernel& psi, CtnrPtr root);

}  // namespace atmo

#endif  // ATMO_SRC_SEC_OBSERVATION_H_
