// Noninterference harness (§4.3).
//
// Checks the unwinding conditions of Nelson et al. over randomized
// adversarial traces of the A/B/V scenario:
//
//   OC (output consistency): identical states + identical syscall ==>
//      identical return value and identical post state. Checked by cloning
//      the kernel and replaying the step twice.
//
//   SC (step consistency): an arbitrary syscall with arbitrary arguments by
//      a thread of A leaves B's observation unchanged, and B's next syscall
//      returns the same value whether or not A's step happened (checked in
//      two cloned worlds). Symmetrically for B against A.
//
//   LR (local respect): with only A and B isolated, LR is subsumed by SC
//      (the paper makes the same argument).
//
//   Isolation preservation: after every step — adversarial or V's —
//      memory_iso(P_A, P_B) and endpoint_iso(T_A, T_B) still hold, and the
//      T_A/T_B constructions satisfy T_A_wf.
//
// The adversarial generator draws arbitrary syscalls with arbitrary
// arguments — including attempts to kill foreign containers, grant pages on
// foreign endpoints, and exhaust quotas — exactly the paper's "we make no
// assumptions about A and B".

#ifndef ATMO_SRC_SEC_NONINTERFERENCE_H_
#define ATMO_SRC_SEC_NONINTERFERENCE_H_

#include <cstdint>
#include <string>

#include "src/sec/abv_scenario.h"
#include "src/sec/verified_proxy.h"

namespace atmo {

struct UnwindingReport {
  std::uint64_t steps = 0;
  std::uint64_t oc_checks = 0;
  std::uint64_t sc_checks = 0;
  std::uint64_t iso_checks = 0;
  bool ok = true;
  std::string detail;
};

struct NoninterferenceOptions {
  int steps = 200;
  bool check_oc = true;
  bool check_sc = true;
  // OC/SC involve kernel clones; check every Nth step to bound cost.
  int oc_every = 4;
  int sc_every = 2;
  bool run_proxy = true;  // service V between adversarial steps
};

class NoninterferenceHarness {
 public:
  NoninterferenceHarness(AbvScenario* scenario, std::uint64_t seed);

  UnwindingReport Run(const NoninterferenceOptions& options);

 private:
  Syscall RandomSyscall(ThrdPtr t, bool client_of_a);
  ThrdPtr PickSchedulable(const std::vector<ThrdPtr>& candidates);
  std::uint64_t Next();

  AbvScenario* scenario_;
  VerifiedProxy proxy_;
  std::uint64_t rng_;
};

}  // namespace atmo

#endif  // ATMO_SRC_SEC_NONINTERFERENCE_H_
