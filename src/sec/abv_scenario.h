// The A/B/V mixed-criticality scenario (§4.3, Figure 1).
//
// Three containers under the root: two untrusted, mutually isolated
// containers A and B, and a verified shared-service container V. A and B
// each run one process with two threads; V runs one process with one thread
// (the paper's simplification). Trusted init wires two endpoint channels:
// e_AV between every A thread (slot 0) and V (slot 0), and e_BV between
// every B thread (slot 0) and V (slot 1). A and B cannot name each other's
// objects — the only cross-container edges are the channels through V.

#ifndef ATMO_SRC_SEC_ABV_SCENARIO_H_
#define ATMO_SRC_SEC_ABV_SCENARIO_H_

#include <vector>

#include "src/core/kernel.h"

namespace atmo {

struct AbvScenario {
  Kernel kernel;

  CtnrPtr a = kNullPtr;
  CtnrPtr b = kNullPtr;
  CtnrPtr v = kNullPtr;
  ProcPtr a_proc = kNullPtr;
  ProcPtr b_proc = kNullPtr;
  ProcPtr v_proc = kNullPtr;
  std::vector<ThrdPtr> a_threads;
  std::vector<ThrdPtr> b_threads;
  ThrdPtr v_thread = kNullPtr;
  EdptPtr e_av = kNullPtr;
  EdptPtr e_bv = kNullPtr;

  // Descriptor slots: clients talk to V on slot 0; V listens on 0 (A) and
  // 1 (B).
  static constexpr EdptIdx kClientSlot = 0;
  static constexpr EdptIdx kVSlotA = 0;
  static constexpr EdptIdx kVSlotB = 1;

  static AbvScenario Build(const BootConfig& config, std::uint64_t quota_a,
                           std::uint64_t quota_b, std::uint64_t quota_v);
};

}  // namespace atmo

#endif  // ATMO_SRC_SEC_ABV_SCENARIO_H_
