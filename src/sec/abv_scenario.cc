#include "src/sec/abv_scenario.h"

#include <utility>

#include "src/vstd/check.h"

namespace atmo {

AbvScenario AbvScenario::Build(const BootConfig& config, std::uint64_t quota_a,
                               std::uint64_t quota_b, std::uint64_t quota_v) {
  std::optional<Kernel> booted = Kernel::Boot(config);
  ATMO_CHECK(booted.has_value(), "ABV scenario: kernel boot failed");
  AbvScenario s{.kernel = std::move(*booted)};
  Kernel& k = s.kernel;
  CtnrPtr root = k.root_container();

  auto a = k.BootCreateContainer(root, quota_a, ~0ull);
  auto b = k.BootCreateContainer(root, quota_b, ~0ull);
  auto v = k.BootCreateContainer(root, quota_v, ~0ull);
  ATMO_CHECK(a.ok() && b.ok() && v.ok(), "ABV scenario: container creation failed");
  s.a = a.value;
  s.b = b.value;
  s.v = v.value;

  auto ap = k.BootCreateProcess(s.a);
  auto bp = k.BootCreateProcess(s.b);
  auto vp = k.BootCreateProcess(s.v);
  ATMO_CHECK(ap.ok() && bp.ok() && vp.ok(), "ABV scenario: process creation failed");
  s.a_proc = ap.value;
  s.b_proc = bp.value;
  s.v_proc = vp.value;

  for (int i = 0; i < 2; ++i) {
    auto at = k.BootCreateThread(s.a_proc);
    auto bt = k.BootCreateThread(s.b_proc);
    ATMO_CHECK(at.ok() && bt.ok(), "ABV scenario: thread creation failed");
    s.a_threads.push_back(at.value);
    s.b_threads.push_back(bt.value);
  }
  auto vt = k.BootCreateThread(s.v_proc);
  ATMO_CHECK(vt.ok(), "ABV scenario: V thread creation failed");
  s.v_thread = vt.value;

  // V creates the two channels; trusted init hands the client ends out.
  {
    Syscall ne;
    ne.op = SysOp::kNewEndpoint;
    ne.edpt_idx = kVSlotA;
    SyscallRet e1 = k.Step(s.v_thread, ne);
    ne.edpt_idx = kVSlotB;
    SyscallRet e2 = k.Step(s.v_thread, ne);
    ATMO_CHECK(e1.ok() && e2.ok(), "ABV scenario: endpoint creation failed");
    s.e_av = e1.value;
    s.e_bv = e2.value;
  }
  for (ThrdPtr t : s.a_threads) {
    ATMO_CHECK(k.pm_mut().BindEndpoint(t, kClientSlot, s.e_av) == ProcError::kOk,
               "ABV scenario: binding A channel failed");
  }
  for (ThrdPtr t : s.b_threads) {
    ATMO_CHECK(k.pm_mut().BindEndpoint(t, kClientSlot, s.e_bv) == ProcError::kOk,
               "ABV scenario: binding B channel failed");
  }
  return s;
}

}  // namespace atmo
