#include "src/sec/noninterference.h"

#include <vector>

#include "src/sec/isolation.h"
#include "src/sec/observation.h"
#include "src/vstd/check.h"

namespace atmo {

namespace {

// Object-creating syscalls return fresh kernel addresses, whose values
// depend on allocator placement — a channel the paper's model excludes by
// construction (cf. Hyperkernel's caller-chosen handles). For OC/SC return
// comparison, such values are compared as "created vs not created" only.
bool ReturnsObjectPointer(SysOp op) {
  switch (op) {
    case SysOp::kNewContainer:
    case SysOp::kNewProcess:
    case SysOp::kNewThread:
    case SysOp::kNewEndpoint:
    case SysOp::kIommuCreateDomain:
    case SysOp::kRingSetup:  // fresh ring id: global-counter shaped
      return true;
    case SysOp::kYield:
    case SysOp::kMmap:
    case SysOp::kMunmap:
    case SysOp::kUnbindEndpoint:
    case SysOp::kSend:
    case SysOp::kRecv:
    case SysOp::kCall:
    case SysOp::kReply:
    case SysOp::kExit:
    case SysOp::kKillProcess:
    case SysOp::kKillContainer:
    case SysOp::kIommuAttachDevice:
    case SysOp::kIommuDetachDevice:
    case SysOp::kIommuMapDma:
    case SysOp::kIommuUnmapDma:
    case SysOp::kRingSubmit:
    case SysOp::kRingEnter:
    case SysOp::kGrantReturn:
    case SysOp::kObsQuery:  // returns sizeof(ObsQueryRecord): a constant
      return false;
  }
  return false;
}

bool RetEquivalent(SysOp op, const SyscallRet& x, const SyscallRet& y) {
  if (x.error != y.error) {
    return false;
  }
  if (ReturnsObjectPointer(op)) {
    return (x.value == 0) == (y.value == 0);
  }
  return x.value == y.value;
}

}  // namespace

NoninterferenceHarness::NoninterferenceHarness(AbvScenario* scenario, std::uint64_t seed)
    : scenario_(scenario),
      proxy_(&scenario->kernel, *scenario),
      rng_(seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull) {}

std::uint64_t NoninterferenceHarness::Next() {
  rng_ ^= rng_ << 13;
  rng_ ^= rng_ >> 7;
  rng_ ^= rng_ << 17;
  return rng_;
}

ThrdPtr NoninterferenceHarness::PickSchedulable(const std::vector<ThrdPtr>& candidates) {
  std::vector<ThrdPtr> ready;
  const Kernel& k = scenario_->kernel;
  for (ThrdPtr t : candidates) {
    if (!k.pm().ThreadExists(t)) {
      continue;
    }
    ThreadState s = k.pm().GetThread(t).state;
    if (s == ThreadState::kRunnable || s == ThreadState::kRunning) {
      ready.push_back(t);
    }
  }
  if (ready.empty()) {
    return kNullPtr;
  }
  return ready[Next() % ready.size()];
}

Syscall NoninterferenceHarness::RandomSyscall(ThrdPtr t, bool client_of_a) {
  const Kernel& k = scenario_->kernel;
  CtnrPtr own = client_of_a ? scenario_->a : scenario_->b;
  Syscall call;

  // A small pool of virtual addresses so mmaps, grants and unmaps collide
  // in interesting ways.
  VAddr va = (1 + Next() % 24) * kPageSize4K * 2;

  switch (Next() % 15) {
    case 0:
      call.op = SysOp::kYield;
      break;
    case 1:
    case 2:
      call.op = SysOp::kMmap;
      call.va_range = VaRange{va, 1 + Next() % 3, PageSize::k4K};
      call.map_perm = MapEntryPerm{.writable = Next() % 2 == 0, .user = true,
                                   .no_execute = false};
      break;
    case 3:
      call.op = SysOp::kMunmap;
      call.va_range = VaRange{va, 1, PageSize::k4K};
      break;
    case 4: {  // send a random opcode, sometimes with a page grant
      call.op = SysOp::kSend;
      call.edpt_idx = AbvScenario::kClientSlot;
      call.payload.scalars = {Next() % 3, Next(), 0, 0};
      if (call.payload.scalars[0] == kOpShare && Next() % 2 == 0) {
        // One in three grants rides the zero-copy borrow path (read-only by
        // construction; a writable borrow must be rejected — the harness
        // sometimes asks for one anyway to exercise that rejection).
        GrantMode mode = Next() % 3 == 0 ? GrantMode::kBorrow : GrantMode::kShare;
        bool writable = mode == GrantMode::kBorrow ? Next() % 8 == 0 : true;
        call.payload.page = PageGrant{.page = va,  // sender VA (may be unmapped)
                                      .size = PageSize::k4K,
                                      .dest_va = (0x700 + Next() % 32) * kPageSize4K,
                                      .perm = MapEntryPerm{.writable = writable, .user = true,
                                                           .no_execute = false},
                                      .mode = mode};
      }
      break;
    }
    case 5:
      call.op = SysOp::kCall;
      call.edpt_idx = AbvScenario::kClientSlot;
      call.payload.scalars = {kOpEcho, Next(), 0, 0};
      break;
    case 6:
      call.op = SysOp::kRecv;
      call.edpt_idx = static_cast<EdptIdx>(Next() % 4);  // sometimes unbound
      break;
    case 7:
      call.op = SysOp::kReply;
      call.payload.scalars = {Next(), 0, 0, 0};
      break;
    case 8:
      call.op = SysOp::kNewEndpoint;
      call.edpt_idx = static_cast<EdptIdx>(1 + Next() % (kMaxEdptDescriptors - 1));
      break;
    case 9:
      call.op = SysOp::kNewContainer;
      call.quota = 2 + Next() % 6;
      call.cpu_mask = ~0ull;
      break;
    case 10: {  // kill: own child container (legal) or a foreign one (denied)
      call.op = SysOp::kKillContainer;
      switch (Next() % 4) {
        case 0:
          call.target = client_of_a ? scenario_->b : scenario_->a;  // foreign: denied
          break;
        case 1:
          call.target = scenario_->v;  // shared service: denied
          break;
        case 2:
          call.target = k.root_container();  // denied
          break;
        default: {
          const Container& c = k.pm().GetContainer(own);
          call.target = c.children.empty() ? 0x1234000 : c.children.Front();
          break;
        }
      }
      break;
    }
    case 11: {
      call.op = SysOp::kKillProcess;
      call.target = Next() % 2 == 0 ? scenario_->v_proc
                                    : (client_of_a ? scenario_->b_proc : scenario_->a_proc);
      break;
    }
    case 12:
      call.op = SysOp::kNewThread;
      break;
    case 13: {
      // Exit, but never the domain's last schedulable thread (the trace
      // would starve).
      SpecSet<ThrdPtr> domain = scenario_->kernel.pm().SubtreeThreads(own);
      std::size_t alive = 0;
      domain.ForAll([&](ThrdPtr x) {
        ThreadState s = k.pm().GetThread(x).state;
        if (s == ThreadState::kRunnable || s == ThreadState::kRunning) {
          ++alive;
        }
        return true;
      });
      call.op = alive > 2 ? SysOp::kExit : SysOp::kYield;
      break;
    }
    case 14:
      // Return a borrowed page: target the grant-destination pool (where a
      // live borrow may sit) or, sometimes, an ordinary mapping / hole so
      // the kDenied / kInvalid arms stay covered.
      call.op = SysOp::kGrantReturn;
      call.va_range = VaRange{Next() % 4 == 0 ? va : (0x700 + Next() % 32) * kPageSize4K,
                              1, PageSize::k4K};
      break;
  }
  (void)t;
  return call;
}

UnwindingReport NoninterferenceHarness::Run(const NoninterferenceOptions& options) {
  UnwindingReport report;
  Kernel& kernel = scenario_->kernel;

  for (int step = 0; step < options.steps; ++step) {
    bool from_a = Next() % 2 == 0;
    CtnrPtr own = from_a ? scenario_->a : scenario_->b;
    CtnrPtr other = from_a ? scenario_->b : scenario_->a;

    // Candidates: all threads currently in the acting domain.
    std::vector<ThrdPtr> candidates;
    for (ThrdPtr t : kernel.pm().SubtreeThreads(own)) {
      candidates.push_back(t);
    }
    ThrdPtr t = PickSchedulable(candidates);
    if (t == kNullPtr) {
      // Everyone is blocked on V; service the channels and retry.
      if (options.run_proxy) {
        proxy_.DrainAll();
      }
      t = PickSchedulable(candidates);
      if (t == kNullPtr) {
        continue;
      }
    }
    Syscall call = RandomSyscall(t, from_a);

    // --- OC: replay the step in two cloned worlds ---
    if (options.check_oc && step % options.oc_every == 0) {
      Kernel w1 = kernel.CloneForVerification();
      Kernel w2 = kernel.CloneForVerification();
      SyscallRet r1 = w1.Step(t, call);
      SyscallRet r2 = w2.Step(t, call);
      if (!(r1 == r2) || !(w1.Abstract() == w2.Abstract())) {
        report.ok = false;
        report.detail = "OC violated: identical states diverged";
        return report;
      }
      ++report.oc_checks;
    }

    // --- SC setup ---
    bool sc_armed = options.check_sc && step % options.sc_every == 0;
    DomainView obs_other_pre;
    std::optional<Kernel> world_without;
    if (sc_armed) {
      obs_other_pre = ObserveDomain(kernel.Abstract(), other);
      world_without.emplace(kernel.CloneForVerification());
    }

    // --- Execute the adversarial step ---
    kernel.Step(t, call);
    ++report.steps;

    // --- SC part 1: the other domain's observation is unchanged ---
    if (sc_armed) {
      DomainView obs_other_post = ObserveDomain(kernel.Abstract(), other);
      if (!(obs_other_post == obs_other_pre)) {
        report.ok = false;
        report.detail = "SC violated: foreign step changed the domain's observation";
        return report;
      }
      // --- SC part 2: the other domain's next syscall is unaffected ---
      std::vector<ThrdPtr> other_threads;
      for (ThrdPtr x : kernel.pm().SubtreeThreads(other)) {
        other_threads.push_back(x);
      }
      ThrdPtr ot = PickSchedulable(other_threads);
      if (ot != kNullPtr) {
        Syscall ocall = RandomSyscall(ot, !from_a);
        Kernel with = kernel.CloneForVerification();
        SyscallRet r_with = with.Step(ot, ocall);
        SyscallRet r_without = world_without->Step(ot, ocall);
        if (!RetEquivalent(ocall.op, r_with, r_without)) {
          report.ok = false;
          report.detail = "SC violated: foreign step changed a return value";
          return report;
        }
        DomainView v_with = ObserveDomain(with.Abstract(), other);
        DomainView v_without = ObserveDomain(world_without->Abstract(), other);
        if (!(v_with == v_without)) {
          report.ok = false;
          report.detail = "SC violated: foreign step changed the post-observation";
          return report;
        }
      }
      ++report.sc_checks;
    }

    // --- V services its channels (verified code) ---
    if (options.run_proxy) {
      proxy_.DrainAll();
      std::string detail;
      if (!proxy_.SpecWf(&detail)) {
        report.ok = false;
        report.detail = "V functional correctness violated: " + detail;
        return report;
      }
    }

    // --- Isolation invariants after the full round ---
    AbstractKernel psi = kernel.Abstract();
    SpecSet<ThrdPtr> t_a = DomainThreads(psi, scenario_->a);
    SpecSet<ThrdPtr> t_b = DomainThreads(psi, scenario_->b);
    SpecSet<ProcPtr> p_a = DomainProcs(psi, scenario_->a);
    SpecSet<ProcPtr> p_b = DomainProcs(psi, scenario_->b);
    if (!DomainThreadsWf(psi, scenario_->a, t_a) ||
        !DomainThreadsWf(psi, scenario_->b, t_b)) {
      report.ok = false;
      report.detail = "T_A_wf violated";
      return report;
    }
    if (!MemoryIso(psi, p_a, p_b)) {
      report.ok = false;
      report.detail = "memory_iso violated";
      return report;
    }
    if (!EndpointIso(psi, t_a, t_b)) {
      report.ok = false;
      report.detail = "endpoint_iso violated";
      return report;
    }
    if (!BorrowIso(psi)) {
      report.ok = false;
      report.detail = "borrow_iso violated";
      return report;
    }
    ++report.iso_checks;
  }
  return report;
}

}  // namespace atmo
