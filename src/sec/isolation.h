// Isolation invariants between container subtrees (§4.3).
//
// Transliterations of the paper's memory_iso / endpoint_iso predicates plus
// the T_A construction over the flat subtree ghost state, all expressed over
// the abstract kernel state.

#ifndef ATMO_SRC_SEC_ISOLATION_H_
#define ATMO_SRC_SEC_ISOLATION_H_

#include "src/spec/abstract_state.h"

namespace atmo {

// C_A: all containers recursively created from A (including A itself).
SpecSet<CtnrPtr> DomainContainers(const AbstractKernel& psi, CtnrPtr a);
// P_A: all processes from all containers in C_A.
SpecSet<ProcPtr> DomainProcs(const AbstractKernel& psi, CtnrPtr a);
// T_A: all threads from all containers in C_A (built from the flat
// `subtree`/`threads` ghost sets — no recursion).
SpecSet<ThrdPtr> DomainThreads(const AbstractKernel& psi, CtnrPtr a);

// T_A_wf (§4.3): the bidirectional invariant that T_A contains exactly the
// threads of A's container subtree.
bool DomainThreadsWf(const AbstractKernel& psi, CtnrPtr a, const SpecSet<ThrdPtr>& t_a);

// memory_iso: no physical page is mapped by an address space of P_A and an
// address space of P_B.
bool MemoryIso(const AbstractKernel& psi, const SpecSet<ProcPtr>& p_a,
               const SpecSet<ProcPtr>& p_b);

// endpoint_iso: no endpoint is referenced by a descriptor of a thread in
// T_A and a descriptor of a thread in T_B.
bool EndpointIso(const AbstractKernel& psi, const SpecSet<ThrdPtr>& t_a,
                 const SpecSet<ThrdPtr>& t_b);

// borrow_iso: every borrowed page has exactly two mappings — the lender's
// recorded view (read-only while on loan) and the borrower's recorded
// read-only view — and appears in no other address space. Writable
// mappings of a page on loan would be a confidentiality/integrity channel
// between lender and borrower; this clause pins the zero-copy grant path
// to read-sharing only.
bool BorrowIso(const AbstractKernel& psi);

}  // namespace atmo

#endif  // ATMO_SRC_SEC_ISOLATION_H_
