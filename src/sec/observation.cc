#include "src/sec/observation.h"

#include <map>
#include <sstream>

namespace atmo {

namespace {

// Canonical renamer: every kernel-object pointer the domain can name is
// replaced by its order of first appearance in the (deterministic)
// traversal. This makes the observation independent of allocator placement.
class Canon {
 public:
  std::uint64_t Id(Ptr ptr) {
    if (ptr == kNullPtr) {
      return 0;
    }
    auto [it, inserted] = ids_.emplace(ptr, ids_.size() + 1);
    return it->second;
  }

 private:
  std::map<Ptr, std::uint64_t> ids_;
};

void EncodePerm(std::ostringstream& out, const MapEntryPerm& perm) {
  out << (perm.writable ? 'w' : '-') << (perm.user ? 'u' : '-')
      << (perm.no_execute ? 'n' : '-');
}

void EncodePayload(std::ostringstream& out, const IpcPayload& payload, Canon& canon) {
  out << "[";
  for (std::uint64_t s : payload.scalars) {
    out << s << ",";
  }
  if (payload.page.has_value()) {
    out << "pg(" << canon.Id(payload.page->page) << "," << payload.page->dest_va << ","
        << static_cast<int>(payload.page->size) << ",";
    EncodePerm(out, payload.page->perm);
    out << ")";
  }
  if (payload.endpoint.has_value()) {
    out << "ep(" << canon.Id(payload.endpoint->endpoint) << ","
        << payload.endpoint->dest_index << ")";
  }
  if (payload.iommu.has_value()) {
    out << "io(" << payload.iommu->domain_id << ")";
  }
  out << "]";
}

void EncodeThread(std::ostringstream& out, const AbstractKernel& psi, ThrdPtr t_ptr,
                  Canon& canon) {
  const AbsThread& t = psi.get_thread(t_ptr);
  // Running and runnable are one observed state: which schedulable thread
  // currently holds the (shared) CPU is a timing artifact of the global
  // round-robin, not domain-visible state (see header note 2).
  ThreadState observed = t.state == ThreadState::kRunning ? ThreadState::kRunnable : t.state;
  out << "T" << canon.Id(t_ptr) << "{st=" << static_cast<int>(observed);
  out << ",ep=";
  for (EdptPtr e : t.endpoints) {
    out << canon.Id(e) << ",";
  }
  out << "wait=" << canon.Id(t.waiting_on) << ",reply=" << canon.Id(t.reply_to)
      << ",in=" << t.has_inbound << ",buf=";
  EncodePayload(out, t.ipc_buf, canon);
  out << "}";
}

void EncodeProc(std::ostringstream& out, const AbstractKernel& psi, ProcPtr p_ptr,
                Canon& canon) {
  const AbsProcess& p = psi.get_proc(p_ptr);
  out << "P" << canon.Id(p_ptr) << "{parent=" << canon.Id(p.parent);
  out << ",thrds=";
  for (ThrdPtr t : p.threads) {
    EncodeThread(out, psi, t, canon);
  }
  out << ",as=";
  if (psi.address_spaces.contains(p_ptr)) {
    for (const auto& [va, entry] : psi.get_address_space(p_ptr)) {
      out << va << "->(" << canon.Id(entry.addr) << "," << static_cast<int>(entry.size)
          << ",";
      EncodePerm(out, entry.perm);
      out << ");";
    }
  }
  out << "}";
}

void EncodeContainer(std::ostringstream& out, const AbstractKernel& psi, CtnrPtr c_ptr,
                     Canon& canon) {
  const AbsContainer& c = psi.get_cntr(c_ptr);
  out << "C" << canon.Id(c_ptr) << "{quota=" << c.mem_quota << ",used=" << c.mem_used
      << ",cpus=" << c.cpu_mask << ",procs=";
  for (ProcPtr p : c.procs) {
    EncodeProc(out, psi, p, canon);
  }
  out << ",children=";
  for (CtnrPtr child : c.children) {
    EncodeContainer(out, psi, child, canon);  // creation order: canonical
  }
  out << "}";
}

}  // namespace

DomainView ObserveDomain(const AbstractKernel& psi, CtnrPtr root) {
  std::ostringstream out;
  Canon canon;
  EncodeContainer(out, psi, root, canon);
  return DomainView{out.str()};
}

}  // namespace atmo
