// V — the verified shared-service container (§3, §4.3).
//
// V is an event-driven state machine: it polls its two channels for
// incoming IPC, reacts according to its specification, and never forwards a
// resource from one client to the other. The paper proves V's functional
// correctness; here V's specification is an executable predicate (SpecWf)
// that the noninterference harness re-checks after every V step:
//
//   1. the sets of pages received from A and from B are disjoint;
//   2. every recorded page is mapped in V's address space (no lost track);
//   3. V never grants a page received from A on the B channel or vice
//      versa (enforced structurally: replies carry scalars only);
//   4. after a client's RELEASE request — or its crash — no page received
//      from that client remains mapped in V (V always releases, §3).
//
// Protocol (scalars[0] = opcode):
//   kOpEcho     — reply with scalars[0]+1 (availability probe, via call()).
//   kOpShare    — message carries a page grant; V records it.
//   kOpRelease  — V unmaps every page previously received from the sender's
//                 client and forgets them.

#ifndef ATMO_SRC_SEC_VERIFIED_PROXY_H_
#define ATMO_SRC_SEC_VERIFIED_PROXY_H_

#include <map>

#include "src/core/kernel.h"
#include "src/sec/abv_scenario.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_set.h"

namespace atmo {

inline constexpr std::uint64_t kOpEcho = 0;
inline constexpr std::uint64_t kOpShare = 1;
inline constexpr std::uint64_t kOpRelease = 2;

class VerifiedProxy {
 public:
  VerifiedProxy(Kernel* kernel, const AbvScenario& scenario);

  // Services at most one pending message per channel. Returns the number of
  // messages handled (0 = both channels idle).
  int PollOnce();
  // Drains both channels.
  int DrainAll();

  // Called by trusted init when a client container was killed: release all
  // resources received from it.
  void OnClientCrash(CtnrPtr client);

  // V's executable specification (see header comment).
  bool SpecWf(std::string* detail = nullptr) const;

  const SpecMap<VAddr, PageGrant>& pages_from_a() const { return from_a_; }
  const SpecMap<VAddr, PageGrant>& pages_from_b() const { return from_b_; }

 private:
  // Handles one pending sender on `v_slot` whose client is `client`.
  bool ServiceChannel(EdptIdx v_slot, CtnrPtr client);
  SpecMap<VAddr, PageGrant>& BookFor(CtnrPtr client);
  void ReleaseClient(CtnrPtr client);

  Kernel* kernel_;
  ThrdPtr v_thread_;
  CtnrPtr a_;
  CtnrPtr b_;
  ProcPtr v_proc_;
  // Bookkeeping: dest VA -> grant, per client.
  SpecMap<VAddr, PageGrant> from_a_;
  SpecMap<VAddr, PageGrant> from_b_;
};

}  // namespace atmo

#endif  // ATMO_SRC_SEC_VERIFIED_PROXY_H_
