#include "src/sec/isolation.h"

namespace atmo {

SpecSet<CtnrPtr> DomainContainers(const AbstractKernel& psi, CtnrPtr a) {
  return psi.get_cntr(a).subtree.insert(a);
}

SpecSet<ProcPtr> DomainProcs(const AbstractKernel& psi, CtnrPtr a) {
  SpecSet<ProcPtr> out;
  for (CtnrPtr c : DomainContainers(psi, a)) {
    for (ProcPtr p : psi.get_cntr(c).procs) {
      out.add(p);
    }
  }
  return out;
}

SpecSet<ThrdPtr> DomainThreads(const AbstractKernel& psi, CtnrPtr a) {
  SpecSet<ThrdPtr> out;
  for (CtnrPtr c : DomainContainers(psi, a)) {
    out = out.Union(psi.get_cntr(c).threads);
  }
  return out;
}

bool DomainThreadsWf(const AbstractKernel& psi, CtnrPtr a, const SpecSet<ThrdPtr>& t_a) {
  // forall c, t: (c == A || A.subtree.contains(c)) && c.owned_thrds.contains(t)
  //              ==> T_A.contains(t)
  SpecSet<CtnrPtr> domain = DomainContainers(psi, a);
  bool forward = psi.containers.ForAll([&](CtnrPtr c, const AbsContainer& ctnr) {
    if (!domain.contains(c)) {
      return true;
    }
    return ctnr.threads.ForAll([&](ThrdPtr t) { return t_a.contains(t); });
  });
  if (!forward) {
    return false;
  }
  // forall t: T_A.contains(t) ==> t's owning container is A or in A's subtree
  return t_a.ForAll([&](ThrdPtr t) {
    return psi.threads.contains(t) && domain.contains(psi.get_thread(t).ctnr);
  });
}

bool MemoryIso(const AbstractKernel& psi, const SpecSet<ProcPtr>& p_a,
               const SpecSet<ProcPtr>& p_b) {
  // forall a_p, a_va, b_p, b_va: mapped pages of P_A and P_B are disjoint.
  SpecSet<PAddr> pages_a;
  for (ProcPtr p : p_a) {
    if (!psi.address_spaces.contains(p)) {
      continue;
    }
    for (const auto& [va, entry] : psi.get_address_space(p)) {
      pages_a.add(entry.addr);
    }
  }
  for (ProcPtr p : p_b) {
    if (!psi.address_spaces.contains(p)) {
      continue;
    }
    for (const auto& [va, entry] : psi.get_address_space(p)) {
      if (pages_a.contains(entry.addr)) {
        return false;
      }
    }
  }
  return true;
}

bool BorrowIso(const AbstractKernel& psi) {
  return psi.pages.ForAll([&](PAddr page, const AbsPageInfo& info) {
    if (!info.borrowed) {
      return true;
    }
    const AbsPageBorrow& b = info.borrow;
    // Both recorded endpoints of the loan exist and map the page read-only.
    if (!psi.address_spaces.contains(b.lender) ||
        !psi.address_spaces.contains(b.borrower)) {
      return false;
    }
    const auto& lspace = psi.get_address_space(b.lender);
    const auto& rspace = psi.get_address_space(b.borrower);
    if (!lspace.contains(b.lender_va) || lspace.at(b.lender_va).addr != page ||
        lspace.at(b.lender_va).perm.writable) {
      return false;
    }
    if (!rspace.contains(b.borrower_va) || rspace.at(b.borrower_va).addr != page ||
        rspace.at(b.borrower_va).perm.writable) {
      return false;
    }
    // ... and those are the only two mappings anywhere.
    if (info.map_count != 2) {
      return false;
    }
    return psi.address_spaces.ForAll([&](ProcPtr p, const auto& space) {
      return space.ForAll([&](VAddr va, const MapEntry& entry) {
        if (entry.addr != page) {
          return true;
        }
        return (p == b.lender && va == b.lender_va) ||
               (p == b.borrower && va == b.borrower_va);
      });
    });
  });
}

bool EndpointIso(const AbstractKernel& psi, const SpecSet<ThrdPtr>& t_a,
                 const SpecSet<ThrdPtr>& t_b) {
  SpecSet<EdptPtr> edpts_a;
  bool ok_a = t_a.ForAll([&](ThrdPtr t) {
    if (!psi.threads.contains(t)) {
      return false;
    }
    for (EdptPtr e : psi.get_thread(t).endpoints) {
      if (e != kNullPtr) {
        edpts_a.add(e);
      }
    }
    return true;
  });
  if (!ok_a) {
    return false;
  }
  return t_b.ForAll([&](ThrdPtr t) {
    if (!psi.threads.contains(t)) {
      return false;
    }
    for (EdptPtr e : psi.get_thread(t).endpoints) {
      if (e != kNullPtr && edpts_a.contains(e)) {
        return false;
      }
    }
    return true;
  });
}

}  // namespace atmo
