// Page-table refinement checkers: flat vs recursive (§6.2).
//
// Both checkers validate the same theorem — the abstract mappings equal what
// the MMU resolves:
//
//   forall l4i,l3i,l2i,l1i in [0,512):
//     mapping_4k().contains(index2va(l4i,l3i,l2i,l1i))
//       <==> resolve_mapping_4k(l4i,l3i,l2i,l1i).is_Some()
//   and where present the resolved (address, permission) pair is equal
//   (and likewise for the 2M and 1G maps).
//
// They differ in *how* — mirroring the proof-structure difference between
// Atmosphere and NrOS that the paper's Table 2 quantifies:
//
//  * FlatRefinementCheck exploits the flat permission storage: it iterates
//    the node map directly, knows each node's level and va-base from the
//    flat ghost metadata, and validates every present entry in place plus a
//    leaf-count argument. No intermediate structures are built — the analog
//    of the paper's 30-line non-recursive proof.
//
//  * RecursiveRefinementCheck follows recursive ownership: it knows only
//    cr3 and interprets the tree by recursive descent, materializing the
//    mapping of every subtree level by level and merging child maps upward
//    (the analog of NrOS's per-level unrolled interpretation, ~200 lines of
//    proof). The merge work at every interior node is what makes it
//    asymptotically and practically slower.

#ifndef ATMO_SRC_PAGETABLE_REFINEMENT_H_
#define ATMO_SRC_PAGETABLE_REFINEMENT_H_

#include <string>

#include "src/hw/mmu.h"
#include "src/pagetable/page_table.h"

namespace atmo {

struct RefinementReport {
  bool ok = true;
  std::string detail;  // first discrepancy, for diagnostics
};

// Flat checker (Atmosphere-style).
RefinementReport FlatRefinementCheck(const PageTable& pt, const PhysMem& mem);

// Recursive checker (NrOS-style hierarchical ownership).
RefinementReport RecursiveRefinementCheck(const PageTable& pt, const PhysMem& mem);

// Sampled MMU cross-check: for every abstract mapping, run the *hardware*
// walker at the mapping base and at a probe offset inside the page, and for
// a set of probe addresses outside the map verify the walker faults. Used by
// tests and as part of the full-kernel invariant suite.
RefinementReport MmuCrossCheck(const PageTable& pt, const Mmu& mmu);

}  // namespace atmo

#endif  // ATMO_SRC_PAGETABLE_REFINEMENT_H_
