#include "src/pagetable/refinement.h"

#include <sstream>

namespace atmo {

namespace {

constexpr std::uint64_t EntrySpan(int level) {
  return 1ull << (12 + 9 * (level - 1));
}

PageSize LevelSize(int level) {
  switch (level) {
    case 1:
      return PageSize::k4K;
    case 2:
      return PageSize::k2M;
    default:
      return PageSize::k1G;
  }
}

RefinementReport Fail(const std::string& detail) {
  return RefinementReport{.ok = false, .detail = detail};
}

std::string Hex(std::uint64_t v) {
  std::ostringstream out;
  out << "0x" << std::hex << v;
  return out.str();
}

// Effective rights of a leaf found below intermediate entries that all carry
// maximal rights (the kernel writes intermediates that way; StructureWf plus
// this check keep the model honest by re-deriving rights from the bits).
MapEntryPerm EffectivePerm(std::uint64_t leaf_pte) { return PtePerm(leaf_pte); }

}  // namespace

// ---------------------------------------------------------------------------
// Flat checker
// ---------------------------------------------------------------------------

RefinementReport FlatRefinementCheck(const PageTable& pt, const PhysMem& mem) {
  // Count leaves seen per size class; combined with per-entry containment
  // this gives map equality without building any intermediate map.
  std::size_t leaves_4k = 0;
  std::size_t leaves_2m = 0;
  std::size_t leaves_1g = 0;

  for (const auto& [addr, perm] : pt.node_perms()) {
    if (!pt.node_info().contains(addr)) {
      return Fail("node " + Hex(addr) + " missing flat ghost metadata");
    }
    const PtNodeInfo& info = pt.node_info().at(addr);
    for (std::uint64_t index = 0; index < kPtEntriesPerNode; ++index) {
      std::uint64_t pte = mem.HwReadU64(addr + index * 8);
      if ((pte & kPtePresent) == 0) {
        continue;
      }
      bool superpage_leaf = (info.level == 2 || info.level == 3) && (pte & kPtePageSize) != 0;
      if (info.level != 1 && !superpage_leaf) {
        continue;  // interior entry; structure checked by StructureWf
      }
      VAddr va = info.va_base + index * EntrySpan(info.level);
      PageSize size = LevelSize(info.level);
      const SpecMap<VAddr, MapEntry>& ghost = pt.mapping(size);
      if (!ghost.contains(va)) {
        return Fail("concrete leaf at va " + Hex(va) + " absent from abstract map");
      }
      const MapEntry& entry = ghost.at(va);
      if (entry.addr != (pte & kPteAddrMask)) {
        return Fail("abstract/concrete address mismatch at va " + Hex(va));
      }
      if (!(entry.perm == EffectivePerm(pte))) {
        return Fail("abstract/concrete permission mismatch at va " + Hex(va));
      }
      switch (info.level) {
        case 1:
          ++leaves_4k;
          break;
        case 2:
          ++leaves_2m;
          break;
        default:
          ++leaves_1g;
          break;
      }
    }
  }

  if (leaves_4k != pt.mapping_4k().size() || leaves_2m != pt.mapping_2m().size() ||
      leaves_1g != pt.mapping_1g().size()) {
    return Fail("abstract map contains entries the concrete table lacks");
  }
  return RefinementReport{};
}

// ---------------------------------------------------------------------------
// Recursive checker (NrOS-style)
// ---------------------------------------------------------------------------

namespace {

struct InterpMaps {
  SpecMap<VAddr, MapEntry> map_4k;
  SpecMap<VAddr, MapEntry> map_2m;
  SpecMap<VAddr, MapEntry> map_1g;
};

// Recursive interpretation of the subtree rooted at `node`: builds the
// mapping of every child, then merges child maps into the node's map — the
// executable analog of a recursive spec interpreted with per-level
// unrolling. Deliberately takes and returns maps by value.
InterpMaps InterpNode(const PhysMem& mem, PAddr node, int level, VAddr base) {
  InterpMaps out;
  for (std::uint64_t index = 0; index < kPtEntriesPerNode; ++index) {
    std::uint64_t pte = mem.HwReadU64(node + index * 8);
    if ((pte & kPtePresent) == 0) {
      continue;
    }
    VAddr slot_base = base + index * EntrySpan(level);
    PAddr target = pte & kPteAddrMask;
    bool superpage_leaf = (level == 2 || level == 3) && (pte & kPtePageSize) != 0;
    if (level == 1) {
      out.map_4k = out.map_4k.insert(
          slot_base, MapEntry{.addr = target, .size = PageSize::k4K, .perm = PtePerm(pte)});
    } else if (superpage_leaf) {
      MapEntry entry{.addr = target, .size = LevelSize(level), .perm = PtePerm(pte)};
      if (level == 2) {
        out.map_2m = out.map_2m.insert(slot_base, entry);
      } else {
        out.map_1g = out.map_1g.insert(slot_base, entry);
      }
    } else {
      // Interior: interpret the child subtree, then merge (functional
      // update per binding — the cost the flat design avoids).
      InterpMaps child = InterpNode(mem, target, level - 1, slot_base);
      for (const auto& [va, entry] : child.map_4k) {
        out.map_4k = out.map_4k.insert(va, entry);
      }
      for (const auto& [va, entry] : child.map_2m) {
        out.map_2m = out.map_2m.insert(va, entry);
      }
      for (const auto& [va, entry] : child.map_1g) {
        out.map_1g = out.map_1g.insert(va, entry);
      }
    }
  }
  return out;
}

}  // namespace

RefinementReport RecursiveRefinementCheck(const PageTable& pt, const PhysMem& mem) {
  InterpMaps interp = InterpNode(mem, pt.cr3(), 4, 0);
  if (!(interp.map_4k == pt.mapping_4k())) {
    return Fail("recursive interpretation disagrees with abstract 4K map");
  }
  if (!(interp.map_2m == pt.mapping_2m())) {
    return Fail("recursive interpretation disagrees with abstract 2M map");
  }
  if (!(interp.map_1g == pt.mapping_1g())) {
    return Fail("recursive interpretation disagrees with abstract 1G map");
  }
  return RefinementReport{};
}

// ---------------------------------------------------------------------------
// MMU cross-check
// ---------------------------------------------------------------------------

RefinementReport MmuCrossCheck(const PageTable& pt, const Mmu& mmu) {
  SpecMap<VAddr, MapEntry> space = pt.AddressSpace();
  for (const auto& [va, entry] : space) {
    std::uint64_t bytes = PageBytes(entry.size);
    for (std::uint64_t probe : {std::uint64_t{0}, bytes / 2, bytes - 1}) {
      std::optional<WalkResult> walk = mmu.Walk(pt.cr3(), va + probe);
      if (!walk.has_value()) {
        return Fail("MMU faults on mapped va " + Hex(va + probe));
      }
      if (walk->page_base != entry.addr || walk->size != entry.size) {
        return Fail("MMU resolves different frame at va " + Hex(va + probe));
      }
      if (!(walk->perm == entry.perm)) {
        return Fail("MMU resolves different rights at va " + Hex(va + probe));
      }
    }
    // Probe the neighbouring page on each side: must either be a distinct
    // mapping or fault — never resolve into this entry's frame from outside.
    const VAddr kInvalid = ~VAddr{0};
    for (VAddr outside : {va == 0 ? kInvalid : va - 1, va + bytes}) {
      if (outside == kInvalid) {
        continue;
      }
      std::optional<WalkResult> walk = mmu.Walk(pt.cr3(), outside);
      if (walk.has_value() && !pt.Resolve(outside).has_value()) {
        return Fail("MMU resolves unmapped va " + Hex(outside));
      }
    }
  }
  return RefinementReport{};
}

}  // namespace atmo
