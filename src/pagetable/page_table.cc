#include "src/pagetable/page_table.h"

#include <utility>

#include "src/vstd/check.h"

namespace atmo {

namespace {

// Bytes covered by one entry of a node at `level` (level 1 entry = 4K page).
constexpr std::uint64_t EntrySpan(int level) {
  return 1ull << (12 + 9 * (level - 1));
}

// Leaf level for a mapping of the given size.
constexpr int LeafLevel(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return 1;
    case PageSize::k2M:
      return 2;
    case PageSize::k1G:
      return 3;
  }
  return 1;
}

}  // namespace

const char* MapErrorName(MapError error) {
  switch (error) {
    case MapError::kOk:
      return "ok";
    case MapError::kAlreadyMapped:
      return "already-mapped";
    case MapError::kConflict:
      return "conflict";
    case MapError::kOutOfMemory:
      return "out-of-memory";
    case MapError::kMisaligned:
      return "misaligned";
    case MapError::kNotMapped:
      return "not-mapped";
  }
  return "?";
}

PageTable::PageTable(PhysMem* mem, PAddr cr3, FramePerm root_perm, CtnrPtr owner)
    : mem_(mem), cr3_(cr3), owner_(owner) {
  mem_->ZeroPage(root_perm);
  // averif-lint: allow(hot-path-alloc) — page-table construction (root node) happens at address-space creation — control plane
  node_perms_.emplace(cr3, std::move(root_perm));
  node_info_.set(cr3, PtNodeInfo{.level = 4, .va_base = 0});
}

std::optional<PageTable> PageTable::New(PhysMem* mem, PageAllocator* alloc, CtnrPtr owner) {
  std::optional<PageAlloc> root = alloc->AllocPage4K(owner);
  if (!root.has_value()) {
    return std::nullopt;
  }
  return PageTable(mem, root->ptr, std::move(root->perm), owner);
}

std::uint64_t PageTable::ReadEntry(PAddr node, std::uint64_t index) const {
  auto it = node_perms_.find(node);
  ATMO_CHECK(it != node_perms_.end(), "page-table read of unowned node");
  return mem_->ReadU64(it->second, node + index * 8);
}

void PageTable::WriteEntry(PAddr node, std::uint64_t index, std::uint64_t pte) {
  auto it = node_perms_.find(node);
  ATMO_CHECK(it != node_perms_.end(), "page-table write of unowned node");
  mem_->WriteU64(it->second, node + index * 8, pte);
  if (write_observer_) {
    write_observer_();
  }
}

std::optional<PAddr> PageTable::EnsureChild(PageAllocator* alloc, PAddr node,
                                            std::uint64_t index, int child_level,
                                            VAddr child_base) {
  std::uint64_t pte = ReadEntry(node, index);
  if ((pte & kPtePresent) != 0) {
    return pte & kPteAddrMask;
  }
  std::optional<PageAlloc> page = alloc->AllocPage4K(owner_);
  if (!page.has_value()) {
    return std::nullopt;
  }
  mem_->ZeroPage(page->perm);
  PAddr child = page->ptr;
  // averif-lint: allow(hot-path-alloc) — allocates only when an intermediate node is first needed; steady-state walks hit existing nodes
  node_perms_.emplace(child, std::move(page->perm));
  node_info_.set(child, PtNodeInfo{.level = child_level, .va_base = child_base});
  // Intermediate entries carry maximal rights; effective rights come from
  // the leaf (the MMU intersects along the walk).
  MapEntryPerm wide{.writable = true, .user = true, .no_execute = false};
  WriteEntry(node, index, MakePte(child, wide, /*leaf_superpage=*/false));
  return child;
}

MapError PageTable::Map(PageAllocator* alloc, VAddr va, PAddr pa, PageSize size,
                        MapEntryPerm perm) {
  std::uint64_t bytes = PageBytes(size);
  if (va % bytes != 0 || pa % bytes != 0) {
    return MapError::kMisaligned;
  }
  if (VaIndex(va, 4) >= kPtEntriesPerNode) {
    return MapError::kMisaligned;  // beyond the modelled 48-bit space
  }

  int leaf = LeafLevel(size);
  PAddr node = cr3_;
  for (int level = 4; level > leaf; --level) {
    std::uint64_t index = VaIndex(va, level);
    std::uint64_t pte = ReadEntry(node, index);
    if ((pte & kPtePresent) != 0 && (pte & kPtePageSize) != 0) {
      return MapError::kConflict;  // an existing superpage covers this range
    }
    VAddr child_base = (va / (EntrySpan(level - 1) * kPtEntriesPerNode)) *
                       (EntrySpan(level - 1) * kPtEntriesPerNode);
    std::optional<PAddr> child = EnsureChild(alloc, node, index, level - 1, child_base);
    if (!child.has_value()) {
      return MapError::kOutOfMemory;
    }
    node = *child;
  }

  std::uint64_t leaf_index = VaIndex(va, leaf);
  std::uint64_t existing = ReadEntry(node, leaf_index);
  if ((existing & kPtePresent) != 0) {
    // At superpage levels a present non-PS entry is a child table: conflict.
    if (leaf > 1 && (existing & kPtePageSize) == 0) {
      return MapError::kConflict;
    }
    return MapError::kAlreadyMapped;
  }

  WriteEntry(node, leaf_index, MakePte(pa, perm, /*leaf_superpage=*/leaf > 1));
  MapEntry entry{.addr = pa, .size = size, .perm = perm};
  MutableMapping(size).set(va, entry);
  va_index_[va] = entry;
  return MapError::kOk;
}

MapError PageTable::CanMap(VAddr va, PageSize size) const {
  std::uint64_t bytes = PageBytes(size);
  if (va % bytes != 0 || VaIndex(va, 4) >= kPtEntriesPerNode) {
    return MapError::kMisaligned;
  }
  int leaf = LeafLevel(size);
  PAddr node = cr3_;
  for (int level = 4; level > leaf; --level) {
    std::uint64_t pte = mem_->HwReadU64(node + VaIndex(va, level) * 8);
    if ((pte & kPtePresent) == 0) {
      return MapError::kOk;  // chain absent from here: fresh nodes suffice
    }
    if ((pte & kPtePageSize) != 0) {
      return MapError::kConflict;
    }
    node = pte & kPteAddrMask;
  }
  std::uint64_t existing = mem_->HwReadU64(node + VaIndex(va, leaf) * 8);
  if ((existing & kPtePresent) != 0) {
    if (leaf > 1 && (existing & kPtePageSize) == 0) {
      return MapError::kConflict;
    }
    return MapError::kAlreadyMapped;
  }
  return MapError::kOk;
}

std::uint64_t PageTable::FreshNodesFor(VAddr va, PageSize size,
                                       std::set<std::uint64_t>* virtual_nodes) const {
  int leaf = LeafLevel(size);
  PAddr node = cr3_;
  std::uint64_t fresh = 0;
  bool below_fresh = false;
  for (int level = 4; level > leaf; --level) {
    // Key identifying the child node slot this level would descend into.
    std::uint64_t child_span = EntrySpan(level - 1) * kPtEntriesPerNode;
    std::uint64_t key = (static_cast<std::uint64_t>(level - 1) << 52) | (va / child_span);
    if (below_fresh) {
      // averif-lint: allow(hot-path-alloc) — per-call scratch set for fresh-node charge accounting on map ops; bounded by the dynamic AllocProbe gate
      if (virtual_nodes == nullptr || virtual_nodes->insert(key).second) {
        ++fresh;
      }
      continue;
    }
    std::uint64_t pte = mem_->HwReadU64(node + VaIndex(va, level) * 8);
    if ((pte & kPtePresent) == 0) {
      below_fresh = true;
      // averif-lint: allow(hot-path-alloc) — same per-call charge-accounting scratch set
      if (virtual_nodes == nullptr || virtual_nodes->insert(key).second) {
        ++fresh;
      }
    } else {
      node = pte & kPteAddrMask;
    }
  }
  return fresh;
}

std::optional<MapEntry> PageTable::Unmap(VAddr va) {
  auto indexed = va_index_.find(va);
  if (indexed == va_index_.end()) {
    return std::nullopt;
  }
  PageSize size = indexed->second.size;
  ATMO_CHECK(mapping(size).contains(va), "va_index_ refers to a mapping the ghost maps lack");

  int leaf = LeafLevel(size);
  PAddr node = cr3_;
  for (int level = 4; level > leaf; --level) {
    std::uint64_t pte = ReadEntry(node, VaIndex(va, level));
    ATMO_CHECK((pte & kPtePresent) != 0 && (pte & kPtePageSize) == 0,
               "ghost map refers to a mapping the concrete table lacks");
    node = pte & kPteAddrMask;
  }
  std::uint64_t leaf_index = VaIndex(va, leaf);
  std::uint64_t pte = ReadEntry(node, leaf_index);
  ATMO_CHECK((pte & kPtePresent) != 0, "ghost map refers to an absent leaf");
  WriteEntry(node, leaf_index, 0);

  MapEntry out = MutableMapping(size).at(va);
  MutableMapping(size).erase(va);
  va_index_.erase(va);
  return out;
}

std::optional<MapEntry> PageTable::Resolve(VAddr va) const {
  // Resolution through the hashed index over the abstract maps; refinement
  // (checked separately) guarantees this equals what the MMU would see.
  // One probe per size class, aligned down to that class's base.
  for (std::uint64_t bytes : {kPageSize4K, kPageSize2M, kPageSize1G}) {
    auto it = va_index_.find(va & ~(bytes - 1));
    if (it != va_index_.end() && PageBytes(it->second.size) == bytes) {
      return it->second;
    }
  }
  return std::nullopt;
}

const SpecMap<VAddr, MapEntry>& PageTable::mapping(PageSize size) const {
  switch (size) {
    case PageSize::k4K:
      return map_4k_;
    case PageSize::k2M:
      return map_2m_;
    case PageSize::k1G:
      return map_1g_;
  }
  return map_4k_;
}

SpecMap<VAddr, MapEntry>& PageTable::MutableMapping(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return map_4k_;
    case PageSize::k2M:
      return map_2m_;
    case PageSize::k1G:
      return map_1g_;
  }
  return map_4k_;
}

SpecMap<VAddr, MapEntry> PageTable::AddressSpace() const {
  if (map_2m_.empty() && map_1g_.empty()) {
    return map_4k_;  // COW share: O(1) for 4K-only address spaces
  }
  SpecMap<VAddr, MapEntry> out = map_4k_;
  for (const auto& [va, entry] : map_2m_) {
    out.set(va, entry);
  }
  for (const auto& [va, entry] : map_1g_) {
    out.set(va, entry);
  }
  return out;
}

SpecSet<PagePtr> PageTable::PageClosure() const {
  SpecSet<PagePtr> out;
  for (const auto& [addr, perm] : node_perms_) {
    out.add(addr);
  }
  return out;
}

bool PageTable::StructureWf(const PhysMem& mem) const {
  // The hashed index is exactly the union of the three ghost maps: same
  // cardinality and every indexed entry present in the map of its size
  // class with the same value.
  if (va_index_.size() != MappingCount()) {
    return false;
  }
  for (const auto& [va, entry] : va_index_) {
    const SpecMap<VAddr, MapEntry>& ground_truth = mapping(entry.size);
    if (!ground_truth.contains(va) || !(ground_truth.at(va) == entry)) {
      return false;
    }
  }

  // Ghost metadata domain equals the permission map domain, root included.
  if (node_perms_.size() != node_info_.size() || !node_perms_.count(cr3_)) {
    return false;
  }
  if (!node_info_.contains(cr3_) || node_info_.at(cr3_).level != 4 ||
      node_info_.at(cr3_).va_base != 0) {
    return false;
  }

  SpecMap<PAddr, int> ref_count;
  for (const auto& [addr, perm] : node_perms_) {
    if (!node_info_.contains(addr)) {
      return false;
    }
    const PtNodeInfo& info = node_info_.at(addr);
    if (info.level < 1 || info.level > 4) {
      return false;
    }
    for (std::uint64_t index = 0; index < kPtEntriesPerNode; ++index) {
      std::uint64_t pte = mem.HwReadU64(addr + index * 8);
      if ((pte & kPtePresent) == 0) {
        continue;
      }
      PAddr target = pte & kPteAddrMask;
      bool superpage_leaf = (info.level == 3 || info.level == 2) && (pte & kPtePageSize) != 0;
      if (info.level == 1 || superpage_leaf) {
        // Leaf: alignment by level.
        std::uint64_t align = EntrySpan(info.level);
        if (target % align != 0) {
          return false;
        }
        continue;
      }
      if (info.level == 1 || (pte & kPtePageSize) != 0) {
        return false;  // PS bit outside PDPT/PD
      }
      // Non-leaf: must reference a registered node of the next level whose
      // va_base matches this slot.
      if (!node_info_.contains(target)) {
        return false;
      }
      const PtNodeInfo& child = node_info_.at(target);
      VAddr slot_base = info.va_base + index * EntrySpan(info.level);
      if (child.level != info.level - 1 || child.va_base != slot_base) {
        return false;
      }
      ref_count.set(target, (ref_count.contains(target) ? ref_count.at(target) : 0) + 1);
    }
  }

  // Acyclicity / tree shape: the root is never referenced; every other node
  // is referenced exactly once.
  if (ref_count.contains(cr3_)) {
    return false;
  }
  for (const auto& [addr, perm] : node_perms_) {
    if (addr == cr3_) {
      continue;
    }
    if (!ref_count.contains(addr) || ref_count.at(addr) != 1) {
      return false;
    }
  }
  return true;
}

void PageTable::Destroy(PageAllocator* alloc) {
  ATMO_CHECK(MappingCount() == 0, "Destroy of page table with live mappings (leak)");
  while (!node_perms_.empty()) {
    auto it = node_perms_.begin();
    PAddr addr = it->first;
    FramePerm perm = std::move(it->second);
    node_perms_.erase(it);
    alloc->FreePage(addr, std::move(perm));
  }
  node_info_ = SpecMap<PAddr, PtNodeInfo>();
  va_index_.clear();
  cr3_ = kNullPtr;
}

PageTable PageTable::CloneForVerification(PhysMem* mem) const {
  PageTable out(mem, cr3_, node_perms_.at(cr3_).CloneForVerification(), owner_);
  // The private constructor zeroes the root frame in `mem`; for a clone the
  // caller passes a PhysMem snapshot, so restore is unnecessary only if the
  // snapshot was taken after construction. To keep this safe, copy the root
  // bytes back from our own memory image.
  for (std::uint64_t index = 0; index < kPtEntriesPerNode; ++index) {
    mem->HwWriteU64(cr3_ + index * 8, mem_->HwReadU64(cr3_ + index * 8));
  }
  out.node_perms_.clear();
  for (const auto& [addr, perm] : node_perms_) {
    // averif-lint: allow(hot-path-alloc) — fresh-clone path runs only on first capture; steady state uses CloneForVerificationInto over pooled state
    out.node_perms_.emplace(addr, perm.CloneForVerification());
  }
  out.node_info_ = node_info_;
  out.map_4k_ = map_4k_;
  out.map_2m_ = map_2m_;
  out.map_1g_ = map_1g_;
  out.va_index_ = va_index_;
  return out;
}

void PageTable::CloneForVerificationInto(PageTable* out, PhysMem* mem) const {
  out->mem_ = mem;
  out->cr3_ = cr3_;
  out->owner_ = owner_;
  // Sorted merge walk over the node-permission map: overwrite common
  // entries in place (FramePerm move-assign into the reused node), erase
  // stale ones, insert missing ones with a hint. Steady-state reuse
  // performs no node allocations.
  auto dit = out->node_perms_.begin();
  for (const auto& [addr, perm] : node_perms_) {
    while (dit != out->node_perms_.end() && dit->first < addr) {
      dit = out->node_perms_.erase(dit);
    }
    if (dit != out->node_perms_.end() && dit->first == addr) {
      dit->second = perm.CloneForVerification();
      ++dit;
    } else {
      // averif-lint: allow(hot-path-alloc) — emplace_hint refills recycled page-table nodes; allocation only on growth past the pooled high-water mark
      out->node_perms_.emplace_hint(dit, addr, perm.CloneForVerification());
    }
  }
  out->node_perms_.erase(dit, out->node_perms_.end());
  // COW spec maps: O(1) rep shares. The hashed index copy-assign reuses the
  // destination's bucket array.
  out->node_info_ = node_info_;
  out->map_4k_ = map_4k_;
  out->map_2m_ = map_2m_;
  out->map_1g_ = map_1g_;
  out->va_index_ = va_index_;
  out->write_observer_ = nullptr;
}

}  // namespace atmo
