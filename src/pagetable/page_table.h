// 4-level page table with flat permission storage (§6.2).
//
// The concrete page table is a tree of 4 KiB node frames living in simulated
// physical memory — the same bits the MMU walker reads. Following the
// paper's key design choice, the tracked permissions of *all* PML levels are
// stored in one flat map at the page-table root, together with per-node
// ghost metadata (level + virtual-address base). The abstract state is three
// ghost maps from virtual address to MapEntry, one per page size, which the
// refinement checkers (src/pagetable/refinement.h) compare against what the
// MMU resolves.
//
// Page-table updates are modelled write-by-write: every 8-byte store to a
// node can be observed through a write observer, which lets tests check the
// paper's §4.2 consistency property — a step that does not modify a leaf
// entry leaves the abstract address space unchanged, and a step that does
// changes exactly one entry.

#ifndef ATMO_SRC_PAGETABLE_PAGE_TABLE_H_
#define ATMO_SRC_PAGETABLE_PAGE_TABLE_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/hw/mmu.h"
#include "src/hw/phys_mem.h"
#include "src/pmem/page_allocator.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

enum class MapError {
  kOk = 0,
  kAlreadyMapped,   // the exact virtual page is already mapped
  kConflict,        // a superpage / table node occupies the slot
  kOutOfMemory,     // could not allocate an intermediate node
  kMisaligned,      // va/pa not aligned to the mapping size
  kNotMapped,       // unmap of an absent mapping
};

const char* MapErrorName(MapError error);

// Ghost metadata for one page-table node (flat storage).
struct PtNodeInfo {
  int level = 0;      // 4 = PML4 (root) ... 1 = PT
  VAddr va_base = 0;  // first virtual address covered by this node

  friend bool operator==(const PtNodeInfo&, const PtNodeInfo&) = default;
};

class PageTable {
 public:
  // Allocates the root node. Returns nullopt on OOM.
  static std::optional<PageTable> New(PhysMem* mem, PageAllocator* alloc, CtnrPtr owner);

  PageTable(PageTable&&) noexcept = default;
  PageTable& operator=(PageTable&&) noexcept = default;

  PAddr cr3() const { return cr3_; }
  CtnrPtr owner() const { return owner_; }

  // Installs `pa` at `va` with the given size and rights. Allocates
  // intermediate nodes from `alloc` as needed (charged to the table owner).
  MapError Map(PageAllocator* alloc, VAddr va, PAddr pa, PageSize size, MapEntryPerm perm);

  // Dry-run of Map: reports the error Map would return (kOk, kMisaligned,
  // kConflict, kAlreadyMapped) without mutating anything or consulting the
  // allocator (node allocation is handled by the caller's cost accounting).
  MapError CanMap(VAddr va, PageSize size) const;

  // Number of fresh intermediate nodes a Map at `va` would allocate,
  // assuming the nodes in `virtual_nodes` (keys: level * 2^52 | base) have
  // already been "created" by earlier maps of the same batch; newly counted
  // nodes are added to the set. Enables exact batched cost pre-computation.
  // `virtual_nodes` may be null for single-mapping queries (no dedup
  // needed, no allocation on the syscall fast path).
  std::uint64_t FreshNodesFor(VAddr va, PageSize size,
                              std::set<std::uint64_t>* virtual_nodes) const;

  // Removes the mapping at `va` (any size); returns what was mapped.
  // Intermediate nodes are kept (they are reclaimed in Destroy()).
  std::optional<MapEntry> Unmap(VAddr va);

  // Software resolve through the kernel's own view (not the MMU).
  std::optional<MapEntry> Resolve(VAddr va) const;

  // --- Ghost state ---
  const SpecMap<VAddr, MapEntry>& mapping_4k() const { return map_4k_; }
  const SpecMap<VAddr, MapEntry>& mapping_2m() const { return map_2m_; }
  const SpecMap<VAddr, MapEntry>& mapping_1g() const { return map_1g_; }
  const SpecMap<VAddr, MapEntry>& mapping(PageSize size) const;
  // Union of the three maps: the process's abstract address space.
  SpecMap<VAddr, MapEntry> AddressSpace() const;
  std::size_t MappingCount() const {
    return map_4k_.size() + map_2m_.size() + map_1g_.size();
  }

  const std::map<PAddr, FramePerm>& node_perms() const { return node_perms_; }
  const SpecMap<PAddr, PtNodeInfo>& node_info() const { return node_info_; }

  // Pages used by this data structure and everything it owns (§4.2
  // page_closure): the node frames. Mapped target pages are owned by the
  // address space, not the table.
  SpecSet<PagePtr> PageClosure() const;

  // Structural well-formedness: node ghost metadata is consistent, every
  // non-leaf present entry points to exactly one registered child node of
  // the next level, leaves are aligned, cr3 is the only root, and the
  // hashed va_index_ equals the union of the three ghost maps.
  bool StructureWf(const PhysMem& mem) const;

  // Frees every node frame back to the allocator, consuming permissions.
  // All mappings must have been unmapped first (leak freedom: target pages
  // would otherwise lose their accounting).
  void Destroy(PageAllocator* alloc);

  // After-write hook for consistency tests (§4.2). Called after every
  // 8-byte store to a node frame.
  void SetWriteObserver(std::function<void()> observer) { write_observer_ = std::move(observer); }

  // Deep copy for the verification harness; node frames themselves live in
  // PhysMem and are cloned by the harness alongside.
  PageTable CloneForVerification(PhysMem* mem) const;
  // Pooled clone: overwrite `out` (a previously cloned or default-shell
  // table) in place, reusing its node-permission map nodes and va_index_
  // buckets. `mem` must already hold this table's node frames (the caller
  // clones PhysMem first), so no frame bytes move here.
  void CloneForVerificationInto(PageTable* out, PhysMem* mem) const;
  // Shell for pooled-clone pools: no root, no permissions; only usable as
  // a CloneForVerificationInto destination.
  PageTable() : mem_(nullptr), cr3_(kNullPtr), owner_(kNullPtr) {}

 private:
  PageTable(PhysMem* mem, PAddr cr3, FramePerm root_perm, CtnrPtr owner);

  std::uint64_t ReadEntry(PAddr node, std::uint64_t index) const;
  void WriteEntry(PAddr node, std::uint64_t index, std::uint64_t pte);

  // Ensures a child node exists at (node, index); returns its address or
  // nullopt on OOM. `child_level` is node's level - 1.
  std::optional<PAddr> EnsureChild(PageAllocator* alloc, PAddr node, std::uint64_t index,
                                   int child_level, VAddr child_base);

  SpecMap<VAddr, MapEntry>& MutableMapping(PageSize size);

  PhysMem* mem_;
  PAddr cr3_;
  CtnrPtr owner_;
  std::map<PAddr, FramePerm> node_perms_;  // flat permission storage
  SpecMap<PAddr, PtNodeInfo> node_info_;   // flat ghost metadata
  SpecMap<VAddr, MapEntry> map_4k_;
  SpecMap<VAddr, MapEntry> map_2m_;
  SpecMap<VAddr, MapEntry> map_1g_;
  // Hashed union of the three ghost maps, keyed by mapping base VA and
  // maintained in lockstep by Map/Unmap (the only mutation points). Turns
  // the per-syscall VA lookups in Resolve/Unmap into O(1) hash probes;
  // StructureWf cross-checks it against the ghost-map ground truth.
  std::unordered_map<VAddr, MapEntry> va_index_;
  std::function<void()> write_observer_;
};

}  // namespace atmo

#endif  // ATMO_SRC_PAGETABLE_PAGE_TABLE_H_
