#!/usr/bin/env bash
# CI entry point: builds and runs the tier-1 test suite three ways —
#   1. the default RelWithDebInfo configuration
#   2. an ASan+UBSan instrumented build (catches the class of bug the
#      refinement harness cannot: UB that happens to compute the right
#      answer, e.g. dereferencing map.end())
#   3. a TSan instrumented build of the multithreaded checking paths: the
#      parallel sharded sweep harness and InvariantRegistry::RunAll with
#      8 workers
# plus quick smoke runs of the incremental-refinement and parallel-sweep
# benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== build + ctest (default config) ==="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== build + ctest (ASan + UBSan) ==="
cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== build + targeted tests (TSan, parallel checking paths) ==="
cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target parallel_sweep_test kernel_test
./build-ci-tsan/tests/parallel_sweep_test
./build-ci-tsan/tests/kernel_test --gtest_filter='*SuiteParallelRunMatchesSerial*'

echo "=== bench smoke (scaled down) ==="
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_incremental_refinement
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_parallel_sweep

echo "CI OK"
