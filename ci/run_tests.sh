#!/usr/bin/env bash
# CI entry point: builds and runs the tier-1 test suite three ways —
#   1. the default RelWithDebInfo configuration
#   2. an ASan+UBSan instrumented build (catches the class of bug the
#      refinement harness cannot: UB that happens to compute the right
#      answer, e.g. dereferencing map.end())
#   3. a TSan instrumented build of the multithreaded checking paths: the
#      parallel sharded sweep harness and InvariantRegistry::RunAll with
#      8 workers
# plus quick smoke runs of the incremental-refinement and parallel-sweep
# benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== build + ctest (default config) ==="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== build + ctest (ASan + UBSan) ==="
cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== build + targeted tests (TSan, parallel checking paths) ==="
cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target parallel_sweep_test kernel_test
./build-ci-tsan/tests/parallel_sweep_test
./build-ci-tsan/tests/kernel_test --gtest_filter='*SuiteParallelRunMatchesSerial*'

echo "=== bench smoke (scaled down) ==="
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_incremental_refinement
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_parallel_sweep
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_table3_syscall_latency
# The syscall-latency gate must emit parseable JSON that says the flatness
# requirements held (map-2M and alloc-1G medians flat across machine sizes).
python3 - <<'EOF'
import json, sys
with open("BENCH_table3_syscall_latency.json") as f:
    report = json.load(f)
if not report.get("all_ok"):
    for op in report.get("ops", []):
        print(f'  {op["op"]}: growth={op.get("growth")} ok={op.get("ok")}',
              file=sys.stderr)
    sys.exit("bench_table3_syscall_latency: flatness gate failed (all_ok=false)")
print(f'table3 gate OK ({len(report["ops"])} ops, quick={report["quick"]})')
EOF

echo "CI OK"
