#!/usr/bin/env bash
# CI entry point: builds and runs the tier-1 test suite twice —
#   1. the default RelWithDebInfo configuration
#   2. an ASan+UBSan instrumented build (catches the class of bug the
#      refinement harness cannot: UB that happens to compute the right
#      answer, e.g. dereferencing map.end())
# plus a quick smoke run of the incremental-refinement benchmark.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

echo "=== build + ctest (default config) ==="
cmake -B build-ci -S . >/dev/null
cmake --build build-ci -j "$JOBS"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== build + ctest (ASan + UBSan) ==="
cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "=== bench smoke (scaled down) ==="
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_incremental_refinement

echo "CI OK"
