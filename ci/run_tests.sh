#!/usr/bin/env bash
# CI entry point: builds and runs the tier-1 test suite three ways —
#   1. the default RelWithDebInfo configuration
#   2. an ASan+UBSan instrumented build (catches the class of bug the
#      refinement harness cannot: UB that happens to compute the right
#      answer, e.g. dereferencing map.end())
#   3. a TSan instrumented build of the multithreaded checking paths: the
#      parallel sharded sweep harness and InvariantRegistry::RunAll with
#      8 workers
# plus quick smoke runs of the incremental-refinement and parallel-sweep
# benchmarks.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

# Golden regeneration is a local, deliberate act (see tests/sweep_golden_test.cc).
# If the variable leaks into a CI run, every golden assertion would be
# bypassed and the run would "pass" by fiat — refuse before building anything.
if [[ -n "${ATMO_SWEEP_GOLDEN_REGEN:-}" ]]; then
  echo "error: ATMO_SWEEP_GOLDEN_REGEN is set. Regenerate goldens locally," >&2
  echo "review the tests/sweep_golden_data.h diff, and commit it; CI only" >&2
  echo "verifies the committed golden. Unset the variable and re-run." >&2
  exit 1
fi

echo "=== build + ctest (default config) ==="
# CMAKE_EXPORT_COMPILE_COMMANDS gives clang-tidy (below) a compilation
# database from the build CI actually ran — no second configure pass.
cmake -B build-ci -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build-ci -j "$JOBS"
# Failing tests dump flight-recorder forensics here; the workflow uploads
# the directory as an artifact when the run fails.
export ATMO_OBS_DUMP_DIR="$PWD/obs-dumps"
mkdir -p "$ATMO_OBS_DUMP_DIR"
ctest --test-dir build-ci --output-on-failure -j "$JOBS"

echo "=== averif_lint (verification-discipline checker, strict) ==="
# The lint binary was built as part of the default config above; run it over
# the real tree. --strict turns a missing rule-input file (e.g. a renamed
# syscall_specs.cc) into a finding, so a refactor cannot silently disable a
# rule. The baseline file is the accepted-findings ledger (committed as []:
# the tree is clean); --baseline keeps CI green on known findings while any
# NEW finding still fails the run. Non-zero exit fails CI.
./build-ci/tools/averif_lint --root . --strict --baseline ci/averif_lint_baseline.json

echo "=== clang-tidy (if available) ==="
# The tidy profile lives in .clang-tidy; the curated check set is green by
# construction, so any warning is a regression. Runs only where clang-tidy
# exists (the GitHub lint job installs it; minimal dev boxes may not have it).
if command -v clang-tidy >/dev/null 2>&1; then
  # Tidy only the sources this change touched: diff against the merge base
  # with the main branch (override with ATMO_TIDY_BASE; full sweep when no
  # base resolves, e.g. a shallow clone without origin/main). The compilation
  # database comes from the build-ci configure above.
  TIDY_BASE="${ATMO_TIDY_BASE:-origin/main}"
  TIDY_SOURCES=()
  if MERGE_BASE=$(git merge-base "$TIDY_BASE" HEAD 2>/dev/null); then
    mapfile -t TIDY_SOURCES < <(git diff --name-only --diff-filter=d "$MERGE_BASE" HEAD \
      -- 'src/*.cc' 'src/**/*.cc' 'tools/*.cc' 'tools/**/*.cc' | sort -u)
    echo "clang-tidy: ${#TIDY_SOURCES[@]} changed source(s) vs $MERGE_BASE"
  else
    mapfile -t TIDY_SOURCES < <(find src tools -name '*.cc' | sort)
    echo "clang-tidy: no merge base for $TIDY_BASE; full sweep (${#TIDY_SOURCES[@]} files)"
  fi
  if [[ ${#TIDY_SOURCES[@]} -gt 0 ]]; then
    clang-tidy -p build-ci --quiet "${TIDY_SOURCES[@]}"
  fi
else
  echo "clang-tidy not found; skipping (CI lint job runs it)"
fi

echo "=== clang thread-safety build (if available) ==="
# Compiles the tree with Clang's thread-safety analysis promoted to an error.
# The annotations in src/vstd/thread_annotations.h are no-ops under GCC, so
# only a Clang build can actually check them.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-ci-tsafety -S . \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" >/dev/null
  cmake --build build-ci-tsafety -j "$JOBS"
else
  echo "clang++ not found; skipping (CI lint job runs it)"
fi

echo "=== build + ctest (ASan + UBSan) ==="
cmake -B build-ci-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"
# The lint fixture suite ran under ASan as part of the ctest sweep above
# (averif_lint_test drives the analyzer over every seeded-violation tree);
# also push the instrumented analyzer itself through the full real tree —
# the call-graph passes do the bulk of their pointer work only at that scale.
./build-ci-asan/tools/averif_lint --root . --strict --baseline ci/averif_lint_baseline.json

echo "=== build + targeted tests (TSan, parallel checking paths) ==="
cmake -B build-ci-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" >/dev/null
cmake --build build-ci-tsan -j "$JOBS" --target parallel_sweep_test kernel_test obs_test
./build-ci-tsan/tests/parallel_sweep_test
./build-ci-tsan/tests/kernel_test --gtest_filter='*SuiteParallelRunMatchesSerial*'
# The obs concurrency surface: 8 shard-like threads on the thread-local
# CopyProbe/AllocProbe counters, 8 threads racing the trace-id sampler's
# shared relaxed atomics.
./build-ci-tsan/tests/obs_test --gtest_filter='ProbeConcurrencyTest.*:SamplerTest.*'

echo "=== ATMO_OBS_DISABLED compile check + probe shells ==="
# The observability kill switch must keep compiling: probes become shells
# that link and read zero (AllocProbe/CopyProbe), CopyPayload still moves
# bytes. Building obs_test is the compile check; running the shell test
# asserts the zero-counter contract from the disabled side.
cmake -B build-ci-obsoff -S . -DCMAKE_CXX_FLAGS="-DATMO_OBS_DISABLED" >/dev/null
cmake --build build-ci-obsoff -j "$JOBS" --target obs_test
# SamplerTest shares one body with the enabled build: here it asserts the
# disabled shells return zeros (no ids, no counts).
./build-ci-obsoff/tests/obs_test --gtest_filter='ProbeShellTest.*:SamplerTest.*'

echo "=== bench smoke (scaled down) ==="
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_incremental_refinement
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_parallel_sweep
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_table3_syscall_latency
# The syscall-latency gate must emit parseable JSON that says the flatness
# requirements held (map-2M and alloc-1G medians flat across machine sizes).
python3 - <<'EOF'
import json, sys
with open("BENCH_table3_syscall_latency.json") as f:
    report = json.load(f)
if not report.get("all_ok"):
    for op in report.get("ops", []):
        print(f'  {op["op"]}: growth={op.get("growth")} ok={op.get("ok")}',
              file=sys.stderr)
    sys.exit("bench_table3_syscall_latency: flatness gate failed (all_ok=false)")
print(f'table3 gate OK ({len(report["ops"])} ops, quick={report["quick"]})')
EOF

echo "=== end-to-end throughput floors (quick mode) ==="
# The batched-syscall-ring bench must clear the absolute floors in
# ci/perf_floors.json: end-to-end req/s per config, the batched
# checked-syscalls/s rate, and the batched-vs-per-call amortization ratio.
# Floors sit at ~10% of measured quick-mode numbers, so tripping one means
# an order-of-magnitude regression (e.g. batching silently degraded to
# per-call checking), not host noise.
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_end_to_end
python3 - <<'EOF'
import json, sys

with open("BENCH_end_to_end.json") as f:
    report = json.load(f)
floors = json.load(open("ci/perf_floors.json"))["end_to_end"]

failures = []
rates = {c["config"]: c["req_per_sec"] for c in report["configs"]}
for config, floor in floors["req_per_sec"].items():
    got = rates.get(config)
    if got is None:
        failures.append(f"config {config!r} missing from BENCH_end_to_end.json")
    elif got < floor:
        failures.append(f"{config}: {got:.0f} req/s < floor {floor}")

batched = report["batched_checked_syscalls_per_sec"]
if batched < floors["batched_checked_syscalls_per_sec"]:
    failures.append(f"batched checked-syscalls/s {batched:.0f} < floor "
                    f'{floors["batched_checked_syscalls_per_sec"]}')
speedup = report["batched_vs_percall_speedup"]
if speedup < floors["min_speedup_batched_vs_percall"]:
    failures.append(f"batched/percall amortization {speedup:.2f}x < "
                    f'{floors["min_speedup_batched_vs_percall"]}x')
# Allocation-free hot path (DESIGN.md §14): the arena-backed checker must
# allocate >=10x less from the global heap per checked step than the same
# trace with arenas off. Skipped when the counting hook is compiled out.
if report.get("alloc_counting_active"):
    reduction = report["alloc_reduction_vs_noarena"]
    if reduction < floors["min_alloc_reduction_vs_noarena"]:
        failures.append(
            f"allocs/checked-step reduction {reduction:.1f}x < "
            f'{floors["min_alloc_reduction_vs_noarena"]}x '
            f'({report["heap_allocs_per_checked_step"]:.1f} arena vs '
            f'{report["noarena_heap_allocs_per_checked_step"]:.1f} heap)')
# Zero-copy splice gate (DESIGN.md §15): the splice config must answer
# requests without staging a single payload byte through memcpy. This is a
# deterministic counter, not a rate, so the bound is exact.
splice = next((c for c in report["configs"] if c["config"] == "splice"), None)
if splice is None:
    failures.append("config 'splice' missing from BENCH_end_to_end.json")
else:
    cap = floors["splice_max_bytes_copied_per_request"]
    if splice["bytes_copied_per_request"] > cap:
        failures.append(
            f'splice: {splice["bytes_copied_per_request"]:.2f} payload bytes '
            f"copied per request (max {cap}: the splice path must be zero-copy)")
    if splice["spliced_responses"] == 0:
        failures.append("splice: no responses actually took the splice path")
# Observability overhead gate (DESIGN.md §17): always-on sampled tracing
# (1/N token-bucket sampler + category-filtered flight recorder) must cost
# at most max_obs_overhead_pct of splice req/s vs tracing disabled. The
# bench discards a warmup run and alternates traced/untraced reps
# (best-of-3 per mode) so warmup and drift cannot bias the ratio.
overhead = report["obs_overhead_pct"]
if overhead > floors["max_obs_overhead_pct"]:
    failures.append(
        f"sampled tracing costs {overhead:.2f}% req/s > "
        f'{floors["max_obs_overhead_pct"]}% budget '
        f'(traced {report["splice_traced_req_per_sec"]:.0f} vs untraced '
        f'{report["splice_untraced_req_per_sec"]:.0f} req/s, '
        f'period 1/{report["trace_sample_period"]})')
# Latency attribution must account for the whole request: the splice
# config's per-stage p50s (rx/app/tx/deliver/check partition the sampled
# request exactly) must sum to within tolerance of the end-to-end p50.
if splice is not None:
    breakdown = splice["stage_breakdown"]
    stage_sum = sum(s["p50_ns"] for name, s in breakdown.items() if name != "e2e")
    e2e_p50 = breakdown.get("e2e", {}).get("p50_ns", 0)
    if e2e_p50 <= 0:
        failures.append("splice stage_breakdown lacks a usable e2e p50")
    else:
        drift = abs(stage_sum - e2e_p50) / e2e_p50 * 100.0
        if drift > floors["stage_p50_sum_tolerance_pct"]:
            failures.append(
                f"splice stage p50s sum to {stage_sum} ns vs e2e p50 "
                f"{e2e_p50} ns ({drift:.1f}% apart, max "
                f'{floors["stage_p50_sum_tolerance_pct"]}%: stages no longer '
                f"partition the request)")
if not report["all_ok"]:
    failures.append("a configuration finished with total_wf not ok")

for f_ in failures:
    print(f"  FLOOR VIOLATION: {f_}", file=sys.stderr)
if failures:
    sys.exit("bench_end_to_end: throughput floor gate failed")
print(f"end-to-end floors OK (batched {batched:.0f} checked sys/s, "
      f"{speedup:.1f}x amortization, quick={report['quick']})")
EOF

echo "=== zero-copy packet pipeline floors (quick mode) ==="
# bench_packet_pipeline runs the same Maglev work through the copying RX/TX
# path and the zero-copy borrow path. Floors: absolute Mpps per config plus
# a hard zero on heap allocations inside each measured loop — the zero-copy
# pipeline's whole point (DESIGN.md §14).
ATMO_BENCH_QUICK=1 ./build-ci/bench/bench_packet_pipeline
python3 - <<'EOF'
import json, sys

with open("BENCH_packet_pipeline.json") as f:
    report = json.load(f)
floors = json.load(open("ci/perf_floors.json"))["packet_pipeline"]

failures = []
rates = {r["config"]: r["ops_per_sec"] for r in report["rows"]}
for config, floor in floors["ops_per_sec"].items():
    got = rates.get(config)
    if got is None:
        failures.append(f"config {config!r} missing from BENCH_packet_pipeline.json")
    elif got < floor:
        failures.append(f"{config}: {got:.0f} pkts/s < floor {floor}")
for config, allocs in report["loop_heap_allocs"].items():
    if allocs > floors["max_loop_heap_allocs"]:
        failures.append(f"{config}: {allocs} heap allocs in the measured loop "
                        f'(max {floors["max_loop_heap_allocs"]})')

for f_ in failures:
    print(f"  FLOOR VIOLATION: {f_}", file=sys.stderr)
if failures:
    sys.exit("bench_packet_pipeline: floor gate failed")
print(f"packet-pipeline floors OK ({', '.join(f'{c} {r/1e6:.2f} Mpps' for c, r in rates.items())}, "
      f"0 loop heap allocs)")
EOF

echo "=== obs smoke (traced sweep + exporter validation) ==="
# A tiny traced sweep with an injected refinement failure must produce
# (a) a Perfetto-loadable Chrome trace, (b) a metrics snapshot, and (c) a
# forensics dump whose tail contains the failing syscall's closed span.
rm -f traced_sweep_trace.json traced_sweep_metrics.json \
  "$ATMO_OBS_DUMP_DIR"/sweep_failure_shard*.json
./build-ci/examples/traced_sweep --fail
python3 - <<'EOF'
import json, os, sys

with open("traced_sweep_trace.json") as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert isinstance(events, list) and events, "empty traceEvents"
for e in events:
    # s/t/f are the Chrome flow phases the stitched request exporter emits.
    assert e["ph"] in ("B", "E", "i", "C", "M", "s", "t", "f"), f"bad phase: {e}"
    required = {"name", "ph", "pid"} if e["ph"] == "M" else {"name", "ph", "ts", "pid", "tid"}
    assert required <= e.keys(), f"bad event: {e}"
phases = {e["ph"] for e in events}
assert {"B", "E", "i"} <= phases, f"missing span/instant events: {phases}"

with open("traced_sweep_metrics.json") as f:
    metrics = json.load(f)
assert {"counters", "gauges", "histograms"} <= metrics.keys()
assert metrics["counters"]["sweep.total_steps"] > 0

dump = os.path.join(os.environ["ATMO_OBS_DUMP_DIR"], "sweep_failure_shard1.json")
with open(dump) as f:
    forensics = json.load(f)
token = forensics["otherData"]["replay_token"]
assert token["shard"] == 1 and token["step"] == 120, token
tail = forensics["traceEvents"]
sys_ends = [e for e in tail if e["ph"] == "E" and e["name"].startswith("sys.")]
assert sys_ends, "forensic tail lacks the failing syscall's closing span"
failing = sys_ends[-1]["name"]
assert any(e["ph"] == "B" and e["name"] == failing for e in tail), \
    f"no matching enter event for {failing}"
print(f"obs smoke OK ({len(events)} trace events, failing span {failing})")
EOF

echo "=== bench + trace schema check ==="
# Every BENCH_*.json summary and OBS_*.json trace the run produced must
# match its schema (strict JSON, per-config stage breakdowns, Perfetto-
# loadable flow events); see tools/bench_schema_check.
./tools/bench_schema_check

echo "CI OK"
